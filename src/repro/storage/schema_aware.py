"""Schema-aware XML-to-relational mapping and shredder (paper Section 3).

Mapping rules:

* each globally shared complex type maps to one relation,
* every other element declaration maps to its own relation,
* text and attributes map to typed columns of the element's relation.

Every relation carries the four descriptors of Figure 1c — ``id`` (global
preorder element id), ``par_id`` (parent element id), ``dewey_pos``
(binary Dewey position) and ``path_id`` (FK into the `Paths` relation) —
plus ``doc_id``.  Indexes follow Section 3.1: the primary key on ``id``,
an index on the parent FK and a composite index on
``(dewey_pos, path_id)``.

Simplification vs. the paper (documented in DESIGN.md): element ids are
global across all relations, so a single ``par_id`` column replaces the
paper's one-FK-column-per-possible-parent-relation; the sibling-axis
conditions of Table 2 already assume such a comparable parent id.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field

from repro.dewey import encode
from repro.errors import SchemaError, StorageError, StoreIntegrityError
from typing import Iterable, Sequence

from repro.resilience.integrity import (
    IntegrityIssue,
    check_document_load,
    check_referential_integrity,
)
from repro.schema.marking import SchemaMarking
from repro.schema.model import Schema
from repro.stats import maintenance as _stats
from repro.stats.summary import PathStats, PathSummary, StatsState
from repro.storage.database import Database
from repro.storage.paths import PathIndex
from repro.xmltree.nodes import Document, ElementNode

#: Identifiers that element names must not shadow (meta tables and SQL
#: keywords that commonly appear as tag names).
_RESERVED = {
    # meta tables of this library
    "paths",
    "docs",
    "edge",
    "attrs",
    "accel",
    "accel_attr",
    # SQL keywords likely to appear as XML tag names
    "abort", "add", "all", "alter", "and", "as", "asc", "attach",
    "begin", "between", "by", "case", "cast", "check", "collate",
    "column", "commit", "create", "cross", "current", "database",
    "default", "delete", "desc", "distinct", "drop", "each", "else",
    "end", "escape", "except", "exists", "explain", "filter", "for",
    "foreign", "from", "full", "glob", "group", "having", "if", "in",
    "index", "inner", "insert", "intersect", "into", "is", "join",
    "key", "left", "like", "limit", "match", "natural", "no", "not",
    "null", "of", "offset", "on", "or", "order", "outer", "over",
    "plan", "pragma", "primary", "query", "references", "regexp",
    "release", "rename", "right", "rollback", "row", "rows", "select",
    "set", "table", "then", "to", "transaction", "trigger", "union",
    "unique", "update", "using", "vacuum", "values", "view", "virtual",
    "when", "where", "window", "with", "without",
}

_IDENTIFIER_RE = re.compile(r"[^A-Za-z0-9_]")


def sanitize_identifier(name: str, taken: set[str]) -> str:
    """Turn an XML name into a fresh, safe SQL identifier.

    Invalid characters become ``_``; reserved words and collisions (SQLite
    identifiers are case-insensitive) get numeric suffixes.  ``taken`` is
    updated with the chosen identifier's lowercase form.
    """
    base = _IDENTIFIER_RE.sub("_", name) or "el"
    if base[0].isdigit():
        base = "el_" + base
    candidate = base
    suffix = 1
    while candidate.lower() in _RESERVED or candidate.lower() in taken:
        suffix += 1
        candidate = f"{base}_{suffix}"
    taken.add(candidate.lower())
    return candidate


@dataclass
class RelationInfo:
    """One mapping relation: its table and typed value columns."""

    table: str
    #: Element names stored in this relation (one unless a shared type).
    element_names: list[str]
    text_kind: str | None = None
    #: attribute name -> (column name, value kind)
    attr_columns: dict[str, tuple[str, str]] = field(default_factory=dict)

    @property
    def shared(self) -> bool:
        """True when several element names share this relation (complex
        type reuse); rows then need the ``elname`` discriminator."""
        return len(self.element_names) > 1

    def attr_column(self, attr_name: str) -> tuple[str, str]:
        """(column, kind) of an attribute.

        :raises SchemaError: if the attribute is not declared.
        """
        try:
            return self.attr_columns[attr_name]
        except KeyError:
            raise SchemaError(
                f"relation {self.table!r} has no attribute {attr_name!r}"
            ) from None


class SchemaAwareMapping:
    """Derives the relational layout for a schema."""

    def __init__(self, schema: Schema):
        self.schema = schema
        self.relations: dict[str, RelationInfo] = {}
        self._by_element: dict[str, RelationInfo] = {}
        taken: set[str] = set()
        by_type: dict[str, list[str]] = {}
        reachable = schema.reachable_from_roots()
        singles: list[str] = []
        for name in schema.element_names():
            if name not in reachable:
                continue
            decl = schema[name]
            if decl.type_name:
                by_type.setdefault(decl.type_name, []).append(name)
            else:
                singles.append(name)
        for type_name, names in by_type.items():
            self._add_relation(type_name, names, taken)
        for name in singles:
            self._add_relation(name, [name], taken)

    def _add_relation(
        self, raw_table: str, names: list[str], taken: set[str]
    ) -> None:
        table = sanitize_identifier(raw_table, taken)
        text_kind: str | None = None
        attr_columns: dict[str, tuple[str, str]] = {}
        col_taken = {
            "id",
            "doc_id",
            "par_id",
            "path_id",
            "dewey_pos",
            "elname",
            "text",
        }
        for name in names:
            decl = self.schema[name]
            if decl.text_kind is not None:
                # A shared relation degrades mixed kinds to string.
                if text_kind is None:
                    text_kind = decl.text_kind
                elif text_kind != decl.text_kind:
                    text_kind = "string"
            for attr in decl.attributes.values():
                if attr.name not in attr_columns:
                    column = sanitize_identifier("attr_" + attr.name, col_taken)
                    attr_columns[attr.name] = (column, attr.kind)
        info = RelationInfo(table, list(names), text_kind, attr_columns)
        self.relations[table] = info
        for name in names:
            self._by_element[name] = info

    # -- lookup ------------------------------------------------------------

    def relation_for(self, element_name: str) -> RelationInfo:
        """The relation storing elements named ``element_name``.

        :raises SchemaError: if the name is not mapped.
        """
        try:
            return self._by_element[element_name]
        except KeyError:
            raise SchemaError(
                f"no relation maps element {element_name!r}"
            ) from None

    def relations_for(self, element_names: Iterable[str]) -> list[RelationInfo]:
        """Distinct relations covering the given element names, in stable
        (table-name) order."""
        seen: dict[str, RelationInfo] = {}
        for name in element_names:
            info = self.relation_for(name)
            seen.setdefault(info.table, info)
        return [seen[t] for t in sorted(seen)]

    # -- DDL ------------------------------------------------------------------

    def ddl(self) -> list[str]:
        """CREATE TABLE / CREATE INDEX statements for all relations."""
        statements = []
        for info in self.relations.values():
            statements.append(self._table_ddl(info))
            statements.extend(self._index_ddl(info))
        return statements

    def index_ddl(self) -> list[str]:
        """Only the secondary-index statements (Section 3.1's parent-FK
        and ``(dewey_pos, path_id)`` indexes).  The bulk-load fast path
        re-runs these after the rows land, which is far cheaper than
        maintaining the trees row by row."""
        return [
            statement
            for info in self.relations.values()
            for statement in self._index_ddl(info)
        ]

    def drop_index_ddl(self) -> list[str]:
        """DROP statements matching :meth:`index_ddl`."""
        return [
            statement
            for info in self.relations.values()
            for statement in (
                f"DROP INDEX IF EXISTS idx_{info.table}_par",
                f"DROP INDEX IF EXISTS idx_{info.table}_dewey",
            )
        ]

    def _table_ddl(self, info: RelationInfo) -> str:
        columns = [
            "id INTEGER PRIMARY KEY",
            "doc_id INTEGER NOT NULL",
            "par_id INTEGER",
            "path_id INTEGER NOT NULL REFERENCES paths(id)",
            "dewey_pos BLOB NOT NULL",
        ]
        if info.shared:
            columns.append("elname TEXT NOT NULL")
        if info.text_kind is not None:
            sql_type = "NUMERIC" if info.text_kind == "number" else "TEXT"
            columns.append(f"text {sql_type}")
        for column, kind in info.attr_columns.values():
            sql_type = "NUMERIC" if kind == "number" else "TEXT"
            columns.append(f"{column} {sql_type}")
        return (
            f"CREATE TABLE {info.table} (\n  "
            + ",\n  ".join(columns)
            + "\n)"
        )

    def _index_ddl(self, info: RelationInfo) -> list[str]:
        return [
            f"CREATE INDEX idx_{info.table}_par ON {info.table}(par_id)",
            f"CREATE INDEX idx_{info.table}_dewey "
            f"ON {info.table}(dewey_pos, path_id)",
        ]


_DOCS_DDL = """
CREATE TABLE IF NOT EXISTS docs (
    id         INTEGER PRIMARY KEY,
    name       TEXT NOT NULL,
    base       INTEGER NOT NULL,
    node_count INTEGER NOT NULL
)
"""

_META_DDL = """
CREATE TABLE IF NOT EXISTS repro_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
)
"""


class ShreddedStore:
    """A schema-aware shredded XML store over one :class:`Database`."""

    def __init__(
        self,
        db: Database,
        schema: Schema,
        mapping: SchemaAwareMapping,
        marking: SchemaMarking,
    ):
        self.db = db
        self.schema = schema
        self.mapping = mapping
        self.marking = marking
        self.path_index = PathIndex(db)
        self._next_base = self._initial_base()
        #: Monotonic mutation counter: bumps on every ``load`` /
        #: ``bulk_load`` / ``append_subtree`` / ``delete_*`` /
        #: ``update_*``.  The engines' result cache keys on it, so a
        #: mutation implicitly invalidates every cached answer.  The
        #: counter is persisted in ``repro_meta`` (so the path-summary
        #: statistics stay versioned across reopen), but only mutations
        #: made *through this store object* count — writers on other
        #: connections (or processes) are invisible to it.
        self._generation = self._initial_generation()
        # Path-summary statistics (repro.stats), loaded lazily.
        self._stats_loaded = False
        self._stats_state: StatsState | None = None
        self._summary: PathSummary | None = None
        #: In-memory copies of documents loaded through this store
        #: instance (doc_id -> (Document, base)); used by the engines'
        #: native-evaluator fallback.
        self.documents: dict[int, Document] = {}
        self._document_bases: dict[int, int] = {}
        # Fallback answers are only trustworthy when every stored
        # document is resident and unmodified since loading.
        row = db.query_one("SELECT COUNT(*) FROM docs") if (
            "docs" in db.table_names()
        ) else None
        self._documents_resident = not (row and row[0])

    @classmethod
    def create(cls, db: Database, schema: Schema) -> "ShreddedStore":
        """Create all relations in ``db`` and return the store.

        The schema graph is persisted alongside the data (``repro_meta``)
        so :meth:`open` can reattach to the database later.
        """
        schema.validate()
        mapping = SchemaAwareMapping(schema)
        db.execute(_DOCS_DDL)
        db.execute(_META_DDL)
        db.execute(
            "INSERT OR REPLACE INTO repro_meta (key, value) VALUES (?, ?)",
            ("schema", json.dumps(schema.to_dict())),
        )
        for statement in mapping.ddl():
            db.execute(statement)
        db.commit()
        return cls(db, schema, mapping, SchemaMarking(schema))

    @classmethod
    def open(cls, db: Database) -> "ShreddedStore":
        """Reattach to a database previously built by :meth:`create`.

        :raises StorageError: when the database has no persisted schema.
        """
        row = db.query_one(
            "SELECT value FROM repro_meta WHERE key = 'schema'"
        ) if "repro_meta" in db.table_names() else None
        if row is None:
            raise StorageError(
                "database holds no persisted schema; was it created by "
                "ShreddedStore.create()?"
            )
        schema = Schema.from_dict(json.loads(row[0]))
        mapping = SchemaAwareMapping(schema)
        return cls(db, schema, mapping, SchemaMarking(schema))

    def _initial_base(self) -> int:
        row = self.db.query_one("SELECT COALESCE(MAX(base + node_count), 0) FROM docs")
        return int(row[0]) if row and row[0] is not None else 0

    def _initial_generation(self) -> int:
        """Restore the persisted mutation counter (0 on fresh stores)."""
        if "repro_meta" not in self.db.table_names():
            return 0
        row = self.db.query_one(
            "SELECT value FROM repro_meta WHERE key = 'generation'"
        )
        return int(row[0]) if row is not None else 0

    @property
    def generation(self) -> int:
        """Current mutation-counter value (see ``_generation``)."""
        return self._generation

    def _bump_generation(self) -> None:
        self._generation += 1
        if "repro_meta" in self.db.table_names():
            self.db.execute(
                "INSERT OR REPLACE INTO repro_meta (key, value) "
                "VALUES ('generation', ?)",
                (str(self._generation),),
            )
            self.db.commit()

    # -- loading -----------------------------------------------------------------

    def load(self, document: Document) -> int:
        """Shred ``document`` into the mapping relations.

        The whole load runs inside one savepoint and is verified by a
        post-load integrity check before release: any mid-load failure
        (or detected inconsistency) rolls every row back, leaving the
        store exactly as it was.

        :returns: the assigned ``doc_id``.
        :raises StorageError: if the document does not conform to the
            store's schema.
        :raises StoreIntegrityError: if the freshly written rows violate
            a store invariant (the load is rolled back first).
        """
        if not self.schema.conforms(document):
            raise StorageError(
                f"document {document.name!r} does not conform to the schema"
            )
        base = self._next_base
        try:
            with self.db.savepoint("repro_load"):
                doc_id, count = self._write_document(document, base)
                issues = check_document_load(
                    self.db,
                    list(self.mapping.relations),
                    doc_id,
                    base,
                    count,
                )
                if issues:
                    raise StoreIntegrityError(
                        "post-load integrity check failed: "
                        + "; ".join(str(issue) for issue in issues)
                    )
        except BaseException:
            # Paths inserted inside the aborted savepoint are gone from
            # the relation; drop them from the cache too.
            self.path_index.refresh()
            raise
        self.db.commit()
        self._next_base = base + count
        self.documents[doc_id] = document
        self._document_bases[doc_id] = base
        self._bump_generation()
        self._stats_apply_documents([document])
        return doc_id

    def bulk_load(
        self, documents: Sequence[Document], chunk_rows: int | None = None
    ) -> list[int]:
        """Load many documents through the fast path.

        Meant for initial loads: secondary indexes are dropped up front
        and rebuilt once after every row lands (index maintenance per
        row is what dominates ``load`` loops), rows go in as bounded
        ``executemany`` chunks, new `Paths` entries are ensured in one
        batch per document, and the whole load runs with
        ``synchronous=OFF`` / ``temp_store=MEMORY`` (restored at exit).
        Everything happens inside one savepoint verified by a store-wide
        referential integrity check, so a failure rolls the store — and
        its indexes — back to the pre-call state.

        Note the per-document :func:`check_document_load` of :meth:`load`
        is replaced by the single store-wide check; on an already
        populated store the index rebuild re-sorts existing rows too, so
        the speedup is largest on a fresh store.

        :returns: the assigned ``doc_id``s, in input order.
        """
        documents = list(documents)
        if not documents:
            return []
        for document in documents:
            if not self.schema.conforms(document):
                raise StorageError(
                    f"document {document.name!r} does not conform to the "
                    f"schema"
                )
        from repro.serving.bulk import DEFAULT_CHUNK_ROWS, bulk_pragmas

        chunk = chunk_rows if chunk_rows else DEFAULT_CHUNK_ROWS
        loaded: list[tuple[int, Document, int]] = []
        next_base = self._next_base
        with bulk_pragmas(self.db):
            try:
                with self.db.savepoint("repro_bulk_load"):
                    for statement in self.mapping.drop_index_ddl():
                        self.db.execute(statement)
                    for document in documents:
                        self.path_index.ensure_many(
                            document.distinct_paths()
                        )
                        doc_id, count = self._write_document(
                            document, next_base, chunk_rows=chunk
                        )
                        loaded.append((doc_id, document, next_base))
                        next_base += count
                    for statement in self.mapping.index_ddl():
                        self.db.execute(statement)
                    issues = check_referential_integrity(
                        self.db, list(self.mapping.relations)
                    )
                    if issues:
                        raise StoreIntegrityError(
                            "bulk-load integrity check failed: "
                            + "; ".join(str(issue) for issue in issues)
                        )
            except BaseException:
                self.path_index.refresh()
                raise
            self.db.commit()
        for doc_id, document, base in loaded:
            self.documents[doc_id] = document
            self._document_bases[doc_id] = base
        self._next_base = next_base
        self._bump_generation()
        self._stats_apply_documents(
            [doc for _, doc, _ in loaded], collect_if_missing=True
        )
        return [doc_id for doc_id, _, _ in loaded]

    def _write_document(
        self, document: Document, base: int, chunk_rows: int | None = None
    ) -> tuple[int, int]:
        """Insert all rows of ``document``; returns (doc_id, count)."""
        count = 0
        rows_by_relation: dict[str, list[tuple]] = {}
        insert_sql: dict[str, str] = {}
        cursor = self.db.execute(
            "INSERT INTO docs (name, base, node_count) VALUES (?, ?, 0)",
            (document.name, base),
        )
        doc_id = int(cursor.lastrowid)
        for element in document.iter_elements():
            count += 1
            info = self.mapping.relation_for(element.name)
            if info.table not in insert_sql:
                insert_sql[info.table] = self._insert_sql(info)
                rows_by_relation[info.table] = []
            rows_by_relation[info.table].append(
                self._row_for(element, info, doc_id, base)
            )
        if chunk_rows is None:
            for table, rows in rows_by_relation.items():
                self.db.executemany(insert_sql[table], rows)
        else:
            from repro.serving.bulk import iter_chunks

            for table, rows in rows_by_relation.items():
                for batch in iter_chunks(rows, chunk_rows):
                    self.db.executemany(insert_sql[table], batch)
        self.db.execute(
            "UPDATE docs SET node_count = ? WHERE id = ?", (count, doc_id)
        )
        return doc_id, count

    # -- fallback support -----------------------------------------------------------

    def resident_documents(self) -> dict[int, tuple[Document, int]] | None:
        """``doc_id -> (Document, base)`` when the in-memory copies
        mirror the stored data exactly — i.e. every document was loaded
        through this store instance and none was modified since.
        Returns ``None`` otherwise; the engines' native fallback then
        declines rather than serve stale answers."""
        if not self._documents_resident:
            return None
        return {
            doc_id: (doc, self._document_bases[doc_id])
            for doc_id, doc in self.documents.items()
        }

    def _mark_documents_stale(self) -> None:
        self._documents_resident = False

    def verify_integrity(self) -> list[IntegrityIssue]:
        """Store-wide referential checks (diagnostics): orphan parents
        and dangling ``path_id`` references across all relations."""
        return check_referential_integrity(
            self.db, list(self.mapping.relations)
        )

    def _insert_sql(self, info: RelationInfo) -> str:
        columns = ["id", "doc_id", "par_id", "path_id", "dewey_pos"]
        if info.shared:
            columns.append("elname")
        if info.text_kind is not None:
            columns.append("text")
        columns.extend(col for col, _ in info.attr_columns.values())
        placeholders = ", ".join("?" for _ in columns)
        return (
            f"INSERT INTO {info.table} ({', '.join(columns)}) "
            f"VALUES ({placeholders})"
        )

    def _row_for(
        self,
        element: ElementNode,
        info: RelationInfo,
        doc_id: int,
        base: int,
    ) -> tuple:
        parent = element.parent
        row: list = [
            base + element.node_id,
            doc_id,
            base + parent.node_id if parent is not None else None,
            self.path_index.ensure(element.path),
            encode(element.dewey),
        ]
        if info.shared:
            row.append(element.name)
        if info.text_kind is not None:
            text = element.direct_text
            row.append(_convert(text, info.text_kind) if text else None)
        for attr_name, (_, kind) in info.attr_columns.items():
            value = element.attributes.get(attr_name)
            row.append(None if value is None else _convert(value, kind))
        return tuple(row)

    # -- id translation -------------------------------------------------------------

    def doc_base(self, doc_id: int) -> int:
        """Global-id base of a document."""
        row = self.db.query_one("SELECT base FROM docs WHERE id = ?", (doc_id,))
        if row is None:
            raise StorageError(f"unknown doc_id {doc_id}")
        return int(row[0])

    def to_document_node_id(self, global_id: int) -> tuple[int, int]:
        """Map a global element id back to ``(doc_id, node_id)``."""
        row = self.db.query_one(
            "SELECT id, base FROM docs "
            "WHERE base < ? AND ? <= base + node_count",
            (global_id, global_id),
        )
        if row is None:
            raise StorageError(f"global id {global_id} belongs to no document")
        return int(row[0]), global_id - int(row[1])

    # -- maintenance ---------------------------------------------------------------------

    def delete_document(self, doc_id: int) -> int:
        """Remove one document's rows from every mapping relation.

        The `Paths` relation is left untouched (paths are shared across
        documents, exactly like the paper's gradually-filled index).

        :returns: the number of element rows removed.
        :raises StorageError: for an unknown ``doc_id``.
        """
        row = self.db.query_one(
            "SELECT node_count FROM docs WHERE id = ?", (doc_id,)
        )
        if row is None:
            raise StorageError(f"unknown doc_id {doc_id}")
        # Capture the statistics deltas while the rows still exist; the
        # subtraction only applies when the summary was fresh going in.
        self._load_stats()
        removal = (
            _stats.removal_deltas(self.db, self.mapping, doc_id)
            if (
                self._stats_state is not None
                and self._stats_state.generation == self._generation
            )
            else None
        )
        removed = 0
        for table in self.mapping.relations:
            cursor = self.db.execute(  # static-ok: sql-interp
                f"DELETE FROM {table} WHERE doc_id = ?", (doc_id,)
            )
            removed += cursor.rowcount
        self.db.execute("DELETE FROM docs WHERE id = ?", (doc_id,))
        self.db.commit()
        self.documents.pop(doc_id, None)
        self._document_bases.pop(doc_id, None)
        self._bump_generation()
        if removal is not None:
            self._stats_apply_removal(*removal)
        return removed

    def append_subtree(self, parent_global_id: int, element: ElementNode) -> list[int]:
        """Insert ``element`` (with its subtree) as the last child of an
        existing stored element — the paper's incremental insertion: new
        root-to-node paths join the `Paths` relation on first sight and
        Dewey ordinals extend without renumbering (append position).

        The fragment must conform to the schema below the parent's
        declaration.  Returns the new global element ids (preorder).

        Appended elements carry correct descriptors for querying, but
        fall outside the original document's contiguous id range;
        :meth:`to_document_node_id` does not cover them (result rows
        still carry the right ``doc_id``).

        :raises StorageError: unknown parent or non-conforming fragment.
        """
        located = self._locate_with_info(parent_global_id)
        if located is None:
            raise StorageError(f"no element with id {parent_global_id}")
        doc_id, parent_dewey_blob, parent_info = located
        parent_name = self._element_name_of(parent_global_id, parent_info)
        if not self._subtree_conforms(parent_name, element):
            raise StorageError(
                f"fragment <{element.name}> does not conform to the "
                f"schema under {parent_name!r}"
            )
        from repro.dewey import decode
        from repro.xmltree.nodes import Document

        parent_vector = decode(parent_dewey_blob)
        ordinal = self._next_child_ordinal(parent_global_id)
        parent_path_row = self.db.query_one(  # static-ok: sql-interp
            f"SELECT p.path FROM {parent_info.table} t, paths p "
            f"WHERE t.id = ? AND t.path_id = p.id",
            (parent_global_id,),
        )
        parent_path = parent_path_row[0]

        # Index the fragment standalone, then translate its descriptors
        # into the parent's coordinate system.
        fragment = Document(element, name="fragment")
        base = self._next_base
        new_ids = []
        rows_by_relation: dict[str, list[tuple]] = {}
        insert_sql: dict[str, str] = {}
        for node in fragment.iter_elements():
            info = self.mapping.relation_for(node.name)
            if info.table not in insert_sql:
                insert_sql[info.table] = self._insert_sql(info)
                rows_by_relation[info.table] = []
            absolute_dewey = parent_vector + (ordinal,) + node.dewey[1:]
            absolute_path = parent_path + node.path
            par_id = (
                parent_global_id
                if node.parent is None
                else base + node.parent.node_id
            )
            global_id = base + node.node_id
            new_ids.append(global_id)
            row: list = [
                global_id,
                doc_id,
                par_id,
                self.path_index.ensure(absolute_path),
                encode(absolute_dewey),
            ]
            if info.shared:
                row.append(node.name)
            if info.text_kind is not None:
                text = node.direct_text
                row.append(_convert(text, info.text_kind) if text else None)
            for attr_name, (_, kind) in info.attr_columns.items():
                value = node.attributes.get(attr_name)
                row.append(None if value is None else _convert(value, kind))
            rows_by_relation[info.table].append(tuple(row))
        for table, rows in rows_by_relation.items():
            self.db.executemany(insert_sql[table], rows)
        self.db.commit()
        self._next_base = base + len(new_ids)
        self._mark_documents_stale()
        self._bump_generation()
        return new_ids

    def _next_child_ordinal(self, parent_global_id: int) -> int:
        """1 + the largest existing child ordinal under the parent."""
        highest = 0
        for table in self.mapping.relations:
            row = self.db.query_one(  # static-ok: sql-interp
                f"SELECT MAX(dewey_pos) FROM {table} WHERE par_id = ?",
                (parent_global_id,),
            )
            if row and row[0] is not None:
                from repro.dewey import decode

                ordinal = decode(bytes(row[0]))[-1]
                highest = max(highest, ordinal)
        return highest + 1

    def _element_name_of(self, global_id: int, info: RelationInfo) -> str:
        if not info.shared:
            return info.element_names[0]
        row = self.db.query_one(  # static-ok: sql-interp
            f"SELECT elname FROM {info.table} WHERE id = ?", (global_id,)
        )
        return row[0]

    def _subtree_conforms(self, parent_name: str, element: ElementNode) -> bool:
        if element.name not in self.schema.children_of(parent_name):
            return False
        stack = [element]
        while stack:
            node = stack.pop()
            if node.name not in self.schema.declarations:
                return False
            for child in node.element_children:
                if child.name not in self.schema.children_of(node.name):
                    return False
                stack.append(child)
        return True

    def _locate_with_info(
        self, global_id: int
    ) -> tuple[int, bytes, RelationInfo] | None:
        for info in self.mapping.relations.values():
            row = self.db.query_one(  # static-ok: sql-interp
                f"SELECT doc_id, dewey_pos FROM {info.table} WHERE id = ?",
                (global_id,),
            )
            if row is not None:
                return int(row[0]), bytes(row[1]), info
        return None

    def delete_subtree(self, global_id: int) -> int:
        """Remove one element and its whole subtree from every relation.

        A showcase of the Dewey model: the subtree is exactly one
        lexicographic range per relation
        (``dewey_pos BETWEEN d AND d || 0xFF`` within the same document),
        so no tree traversal is needed.

        :returns: the number of element rows removed.
        :raises StorageError: when ``global_id`` does not exist.
        """
        located = self._locate(global_id)
        if located is None:
            raise StorageError(f"no element with id {global_id}")
        doc_id, dewey = located
        upper = dewey + b"\xff"
        removed = 0
        for table in self.mapping.relations:
            cursor = self.db.execute(  # static-ok: sql-interp
                f"DELETE FROM {table} WHERE doc_id = ? "
                f"AND dewey_pos >= ? AND dewey_pos < ?",
                (doc_id, dewey, upper),
            )
            removed += cursor.rowcount
        self.db.commit()
        self._mark_documents_stale()
        self._bump_generation()
        return removed

    def update_text(self, global_id: int, value: object) -> None:
        """Set the text value of one element.

        :raises StorageError: when the element does not exist or its
            relation has no text column.
        """
        info = self._relation_of(global_id)
        if info.text_kind is None:
            raise StorageError(
                f"relation {info.table!r} stores no text values"
            )
        self.db.execute(  # static-ok: sql-interp
            f"UPDATE {info.table} SET text = ? WHERE id = ?",
            (_convert(str(value), info.text_kind), global_id),
        )
        self.db.commit()
        self._mark_documents_stale()
        self._bump_generation()

    def update_attribute(
        self, global_id: int, name: str, value: object | None
    ) -> None:
        """Set one attribute of one element (``None`` removes it).

        :raises StorageError: when the element does not exist or the
            attribute is not declared for its relation.
        """
        info = self._relation_of(global_id)
        column, kind = info.attr_column(name)
        converted = None if value is None else _convert(str(value), kind)
        self.db.execute(  # static-ok: sql-interp
            f"UPDATE {info.table} SET {column} = ? WHERE id = ?",
            (converted, global_id),
        )
        self.db.commit()
        self._mark_documents_stale()
        self._bump_generation()

    def _locate(self, global_id: int) -> tuple[int, bytes] | None:
        """(doc_id, dewey_pos) of an element, searching all relations."""
        for table in self.mapping.relations:
            row = self.db.query_one(  # static-ok: sql-interp
                f"SELECT doc_id, dewey_pos FROM {table} WHERE id = ?",
                (global_id,),
            )
            if row is not None:
                return int(row[0]), bytes(row[1])
        return None

    def _relation_of(self, global_id: int) -> RelationInfo:
        for table, info in self.mapping.relations.items():
            row = self.db.query_one(  # static-ok: sql-interp
                f"SELECT 1 FROM {table} WHERE id = ?", (global_id,)
            )
            if row is not None:
                return info
        raise StorageError(f"no element with id {global_id}")

    # -- path-summary statistics (repro.stats) -----------------------------------------

    def _load_stats(self) -> None:
        if self._stats_loaded:
            return
        self._stats_loaded = True
        self._stats_state = _stats.load_state(self.db)

    @property
    def stats_version(self) -> tuple[int, int] | None:
        """The persisted summary's ``(epoch, generation)``, or ``None``
        when statistics were never collected.  Cache fingerprints (the
        translator's, hence the engine result cache's) incorporate this,
        so refreshed statistics can never serve a stale plan's rows."""
        self._load_stats()
        return (
            self._stats_state.version
            if self._stats_state is not None
            else None
        )

    @property
    def statistics_stale(self) -> bool:
        """True when no summary exists, or the store mutated since the
        summary was last written (``append_subtree`` / ``delete_subtree``
        / ``update_*`` do not maintain counts — refresh with
        :meth:`collect_statistics`).  Stale statistics are still *safe*:
        they only steer performance decisions, never result semantics."""
        self._load_stats()
        if self._stats_state is None:
            return True
        return self._stats_state.generation != self._generation

    def path_summary(self) -> PathSummary | None:
        """The current :class:`~repro.stats.summary.PathSummary`, or
        ``None`` when statistics were never collected."""
        self._load_stats()
        if self._stats_state is None:
            return None
        if (
            self._summary is None
            or self._summary.version != self._stats_state.version
        ):
            self._summary = _stats.load_summary(self.db)
        return self._summary

    def collect_statistics(self) -> PathSummary:
        """Recompute the path summary from the stored rows and persist
        it (epoch bump, versioned against the current generation)."""
        self._load_stats()
        epoch = (
            self._stats_state.epoch + 1
            if self._stats_state is not None
            else 1
        )
        summary = _stats.collect_summary(
            self.db, self.mapping, (epoch, self._generation)
        )
        self._persist_summary(summary)
        return summary

    def _persist_summary(self, summary: PathSummary) -> None:
        _stats.persist_summary(self.db, summary, self.path_index.all_paths())
        self._stats_state = StatsState(
            epoch=summary.version[0],
            generation=summary.version[1],
            document_count=summary.document_count,
            relation_counts=dict(summary.relation_counts),
        )
        self._summary = summary

    def _stats_apply_documents(
        self, documents: Sequence[Document], collect_if_missing: bool = False
    ) -> None:
        """Incremental maintenance after ``load``/``bulk_load`` (called
        post-bump).  A bulk load on a store without statistics collects
        them in full ("collected at shred time",
        ``collect_if_missing=True``); a single-document ``load`` only
        maintains counts that already exist, so unit-scale stores stay
        statistics-free — and hence byte-identical to the heuristic
        pipeline — until bulk-loaded or explicitly analyzed.  A store
        whose summary already lagged behind stays stale until
        explicitly refreshed."""
        self._load_stats()
        if self._stats_state is None:
            if collect_if_missing:
                self.collect_statistics()
            return
        if self._stats_state.generation != self._generation - 1:
            return
        summary = self.path_summary()
        if summary is None:
            self.collect_statistics()
            return
        stats = dict(summary.stats)
        relation_counts = dict(summary.relation_counts)
        document_count = summary.document_count
        for document in documents:
            per_path, per_relation = _stats.document_deltas(
                self.mapping, document
            )
            for path, (elements, values) in per_path.items():
                previous = stats.get(path)
                stats[path] = PathStats(
                    path=path,
                    element_count=(
                        previous.element_count if previous else 0
                    ) + elements,
                    doc_count=(previous.doc_count if previous else 0) + 1,
                    value_count=(
                        previous.value_count if previous else 0
                    ) + values,
                )
            for table, rows in per_relation.items():
                relation_counts[table] = (
                    relation_counts.get(table, 0) + rows
                )
            document_count += 1
        self._persist_summary(
            PathSummary(
                version=(self._stats_state.epoch + 1, self._generation),
                document_count=document_count,
                relation_counts=relation_counts,
                stats=stats,
            )
        )

    def _stats_apply_removal(
        self,
        per_path: dict[str, tuple[int, int]],
        per_relation: dict[str, int],
    ) -> None:
        """Subtract one deleted document's counts (called post-bump)."""
        summary = self.path_summary()
        if summary is None:
            self.collect_statistics()
            return
        stats = dict(summary.stats)
        for path, (elements, values) in per_path.items():
            previous = stats.get(path)
            if previous is None:
                continue
            remaining = previous.element_count - elements
            if remaining <= 0:
                stats.pop(path)
            else:
                stats[path] = PathStats(
                    path=path,
                    element_count=remaining,
                    doc_count=max(previous.doc_count - 1, 0),
                    value_count=max(previous.value_count - values, 0),
                )
        relation_counts = dict(summary.relation_counts)
        for table, rows in per_relation.items():
            relation_counts[table] = max(
                relation_counts.get(table, 0) - rows, 0
            )
        self._persist_summary(
            PathSummary(
                version=(summary.version[0] + 1, self._generation),
                document_count=max(summary.document_count - 1, 0),
                relation_counts=relation_counts,
                stats=stats,
            )
        )

    # -- stats ------------------------------------------------------------------------

    def relation_counts(self) -> dict[str, int]:
        """Row count per mapping relation (diagnostics / tests)."""
        return {
            table: self.db.query_one(f"SELECT COUNT(*) FROM {table}")[0]  # static-ok: sql-interp
            for table in sorted(self.mapping.relations)
        }

    def total_elements(self) -> int:
        """Total element count across all loaded documents."""
        row = self.db.query_one("SELECT COALESCE(SUM(node_count), 0) FROM docs")
        return int(row[0])


def _convert(value: str, kind: str) -> str | int | float:
    """Convert a raw XML value to its column representation."""
    if kind != "number":
        return value
    try:
        number = float(value)
    except ValueError:
        return value
    if number == int(number):
        return int(number)
    return number
