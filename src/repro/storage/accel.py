"""XPath Accelerator storage: pre/post region encoding (Grust et al.).

The Section 5.2 baseline.  Every element gets a preorder rank ``pre``
(its global id here), a postorder rank ``post``, its parent's ``pre`` and
its ``level``; the window conditions of the accelerator's axis evaluation
are then range predicates over ``(pre, post)``.  Attributes are kept in a
side relation keyed by the owner's ``pre`` — a common engineering
simplification that preserves the element-axis self-join shape the
baseline is measured for.
"""

from __future__ import annotations

from repro.storage.database import Database
from repro.xmltree.nodes import Document, ElementNode

_ACCEL_DDL = [
    """
    CREATE TABLE IF NOT EXISTS docs (
        id         INTEGER PRIMARY KEY,
        name       TEXT NOT NULL,
        base       INTEGER NOT NULL,
        node_count INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE accel (
        pre    INTEGER PRIMARY KEY,
        post   INTEGER NOT NULL,
        par    INTEGER,
        level  INTEGER NOT NULL,
        name   TEXT NOT NULL,
        doc_id INTEGER NOT NULL,
        text   TEXT
    )
    """,
    "CREATE INDEX idx_accel_post ON accel(post)",
    "CREATE INDEX idx_accel_name ON accel(name, pre)",
    "CREATE INDEX idx_accel_par ON accel(par)",
    """
    CREATE TABLE accel_attr (
        elem_pre INTEGER NOT NULL REFERENCES accel(pre),
        name     TEXT NOT NULL,
        value    TEXT,
        PRIMARY KEY (elem_pre, name)
    )
    """,
    "CREATE INDEX idx_accel_attr ON accel_attr(name, value)",
]


class AccelStore:
    """A pre/post-encoded XML store over one :class:`Database`."""

    def __init__(self, db: Database):
        self.db = db
        row = db.query_one("SELECT COALESCE(MAX(base + node_count), 0) FROM docs")
        self._next_base = int(row[0]) if row and row[0] is not None else 0

    @classmethod
    def create(cls, db: Database) -> "AccelStore":
        """Create the accelerator relations and return the store."""
        for statement in _ACCEL_DDL:
            db.execute(statement)
        db.commit()
        return cls(db)

    def load(self, document: Document) -> int:
        """Encode and store ``document``.

        ``pre`` is ``base + node_id`` so accelerator results are directly
        comparable with the other stores' global element ids.
        """
        base = self._next_base
        cursor = self.db.execute(
            "INSERT INTO docs (name, base, node_count) VALUES (?, ?, 0)",
            (document.name, base),
        )
        doc_id = int(cursor.lastrowid)
        post_ranks = _postorder_ranks(document)
        accel_rows = []
        attr_rows = []
        count = 0
        for element in document.iter_elements():
            count += 1
            pre = base + element.node_id
            parent = element.parent
            text = element.direct_text
            accel_rows.append(
                (
                    pre,
                    base + post_ranks[element.node_id],
                    base + parent.node_id if parent is not None else None,
                    element.level,
                    element.name,
                    doc_id,
                    text if text else None,
                )
            )
            for attr_name, value in element.attributes.items():
                attr_rows.append((pre, attr_name, value))
        self.db.executemany(
            "INSERT INTO accel (pre, post, par, level, name, doc_id, text)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            accel_rows,
        )
        self.db.executemany(
            "INSERT INTO accel_attr (elem_pre, name, value) VALUES (?, ?, ?)",
            attr_rows,
        )
        self.db.execute(
            "UPDATE docs SET node_count = ? WHERE id = ?", (count, doc_id)
        )
        self.db.commit()
        self._next_base = base + count
        return doc_id

    def total_elements(self) -> int:
        """Number of stored element rows."""
        row = self.db.query_one("SELECT COUNT(*) FROM accel")
        return int(row[0])


def _postorder_ranks(document: Document) -> dict[int, int]:
    """node_id -> 1-based postorder rank over element nodes."""
    ranks: dict[int, int] = {}
    counter = 0

    def visit(element: ElementNode) -> None:
        nonlocal counter
        for child in element.element_children:
            visit(child)
        counter += 1
        ranks[element.node_id] = counter

    visit(document.root)
    return ranks
