"""Schema-oblivious Edge-like mapping (paper Section 5.1).

All elements land in one central ``edge`` relation; attributes live in a
dedicated ``attrs`` relation (the paper's footnote 3 option).  The Edge
store keeps the same four descriptors as the schema-aware mapping —
global ``id``, ``par_id``, ``dewey_pos`` and ``path_id`` — so the PPF
translation algorithm applies unchanged, only against a single (large)
relation, which is exactly the configuration the Figure 3 experiment
compares against.
"""

from __future__ import annotations

from repro.dewey import encode
from typing import Sequence

from repro.errors import StoreIntegrityError
from repro.resilience.integrity import (
    IntegrityIssue,
    check_document_load,
    check_referential_integrity,
)
from repro.storage.database import Database
from repro.storage.paths import PathIndex
from repro.xmltree.nodes import Document

_EDGE_INDEX_DDL = {
    "idx_edge_par": "CREATE INDEX idx_edge_par ON edge(par_id)",
    "idx_edge_name": "CREATE INDEX idx_edge_name ON edge(name)",
    "idx_edge_dewey": "CREATE INDEX idx_edge_dewey ON edge(dewey_pos, path_id)",
    "idx_attrs_name": "CREATE INDEX idx_attrs_name ON attrs(name, value)",
}

_EDGE_DDL = [
    """
    CREATE TABLE IF NOT EXISTS docs (
        id         INTEGER PRIMARY KEY,
        name       TEXT NOT NULL,
        base       INTEGER NOT NULL,
        node_count INTEGER NOT NULL
    )
    """,
    """
    CREATE TABLE edge (
        id        INTEGER PRIMARY KEY,
        doc_id    INTEGER NOT NULL,
        par_id    INTEGER,
        name      TEXT NOT NULL,
        path_id   INTEGER NOT NULL REFERENCES paths(id),
        dewey_pos BLOB NOT NULL,
        text      TEXT
    )
    """,
    _EDGE_INDEX_DDL["idx_edge_par"],
    _EDGE_INDEX_DDL["idx_edge_name"],
    _EDGE_INDEX_DDL["idx_edge_dewey"],
    """
    CREATE TABLE attrs (
        elem_id INTEGER NOT NULL REFERENCES edge(id),
        name    TEXT NOT NULL,
        value   TEXT,
        PRIMARY KEY (elem_id, name)
    )
    """,
    _EDGE_INDEX_DDL["idx_attrs_name"],
]


class EdgeStore:
    """A schema-oblivious shredded XML store over one :class:`Database`."""

    def __init__(self, db: Database):
        self.db = db
        self.path_index = PathIndex(db)
        row = db.query_one("SELECT COALESCE(MAX(base + node_count), 0) FROM docs")
        self._next_base = int(row[0]) if row and row[0] is not None else 0
        #: In-memory copies of documents loaded through this store
        #: instance (doc_id -> Document); used by the engines'
        #: native-evaluator fallback.
        self.documents: dict[int, Document] = {}
        self._document_bases: dict[int, int] = {}
        count_row = db.query_one("SELECT COUNT(*) FROM docs")
        self._documents_resident = not (count_row and count_row[0])
        #: Monotonic mutation counter (see ``ShreddedStore.generation``).
        self._generation = 0

    @property
    def generation(self) -> int:
        """Current mutation-counter value; the engines' result cache
        keys on it."""
        return self._generation

    def _bump_generation(self) -> None:
        self._generation += 1

    @classmethod
    def create(cls, db: Database) -> "EdgeStore":
        """Create the ``edge``/``attrs`` relations and return the store."""
        db.execute(_EDGE_DDL[0])
        # PathIndex creates `paths` before edge's FK references it.
        PathIndex(db)
        for statement in _EDGE_DDL[1:]:
            db.execute(statement)
        db.commit()
        return cls(db)

    def load(self, document: Document) -> int:
        """Shred ``document`` into the central relation.

        The load runs inside one savepoint and is verified by a
        post-load integrity check before release: a mid-load failure
        rolls every row back, leaving the store unchanged.

        :returns: the assigned ``doc_id``.
        :raises StoreIntegrityError: when the freshly written rows
            violate a store invariant (the load is rolled back first).
        """
        base = self._next_base
        try:
            with self.db.savepoint("repro_load"):
                doc_id, count = self._write_document(document, base)
                issues = check_document_load(
                    self.db, ["edge"], doc_id, base, count
                )
                orphan_attrs = self.db.query_one(
                    "SELECT COUNT(*) FROM attrs WHERE elem_id >= ? "
                    "AND elem_id < ? AND elem_id NOT IN "
                    "(SELECT id FROM edge)",
                    (base, base + count),
                )
                if orphan_attrs[0]:
                    issues.append(
                        IntegrityIssue(
                            "orphan-parent",
                            "attrs",
                            f"{orphan_attrs[0]} attribute row(s) reference "
                            f"a missing element",
                        )
                    )
                if issues:
                    raise StoreIntegrityError(
                        "post-load integrity check failed: "
                        + "; ".join(str(issue) for issue in issues)
                    )
        except BaseException:
            self.path_index.refresh()
            raise
        self.db.commit()
        self._next_base = base + count
        self.documents[doc_id] = document
        self._document_bases[doc_id] = base
        self._bump_generation()
        return doc_id

    def bulk_load(
        self, documents: Sequence[Document], chunk_rows: int | None = None
    ) -> list[int]:
        """Load many documents through the fast path (see
        :meth:`ShreddedStore.bulk_load`): secondary indexes dropped and
        rebuilt once, chunked ``executemany`` batches, batched `Paths`
        inserts, ``synchronous=OFF`` / ``temp_store=MEMORY`` for the
        duration, one savepoint verified by a store-wide referential
        check at exit.

        :returns: the assigned ``doc_id``s, in input order.
        """
        documents = list(documents)
        if not documents:
            return []
        from repro.serving.bulk import DEFAULT_CHUNK_ROWS, bulk_pragmas

        chunk = chunk_rows if chunk_rows else DEFAULT_CHUNK_ROWS
        loaded: list[tuple[int, Document, int]] = []
        next_base = self._next_base
        with bulk_pragmas(self.db):
            try:
                with self.db.savepoint("repro_bulk_load"):
                    for name in _EDGE_INDEX_DDL:
                        self.db.execute(f"DROP INDEX IF EXISTS {name}")  # static-ok: sql-interp
                    for document in documents:
                        self.path_index.ensure_many(
                            document.distinct_paths()
                        )
                        doc_id, count = self._write_document(
                            document, next_base, chunk_rows=chunk
                        )
                        loaded.append((doc_id, document, next_base))
                        next_base += count
                    for statement in _EDGE_INDEX_DDL.values():
                        self.db.execute(statement)
                    issues = check_referential_integrity(self.db, ["edge"])
                    if issues:
                        raise StoreIntegrityError(
                            "bulk-load integrity check failed: "
                            + "; ".join(str(issue) for issue in issues)
                        )
            except BaseException:
                self.path_index.refresh()
                raise
            self.db.commit()
        for doc_id, document, base in loaded:
            self.documents[doc_id] = document
            self._document_bases[doc_id] = base
        self._next_base = next_base
        self._bump_generation()
        return [doc_id for doc_id, _, _ in loaded]

    def _write_document(
        self, document: Document, base: int, chunk_rows: int | None = None
    ) -> tuple[int, int]:
        """Insert all rows of ``document``; returns (doc_id, count)."""
        cursor = self.db.execute(
            "INSERT INTO docs (name, base, node_count) VALUES (?, ?, 0)",
            (document.name, base),
        )
        doc_id = int(cursor.lastrowid)
        edge_rows = []
        attr_rows = []
        count = 0
        for element in document.iter_elements():
            count += 1
            global_id = base + element.node_id
            parent = element.parent
            text = element.direct_text
            edge_rows.append(
                (
                    global_id,
                    doc_id,
                    base + parent.node_id if parent is not None else None,
                    element.name,
                    self.path_index.ensure(element.path),
                    encode(element.dewey),
                    text if text else None,
                )
            )
            for attr_name, value in element.attributes.items():
                attr_rows.append((global_id, attr_name, value))
        edge_sql = (
            "INSERT INTO edge (id, doc_id, par_id, name, path_id, dewey_pos,"
            " text) VALUES (?, ?, ?, ?, ?, ?, ?)"
        )
        attr_sql = "INSERT INTO attrs (elem_id, name, value) VALUES (?, ?, ?)"
        if chunk_rows is None:
            self.db.executemany(edge_sql, edge_rows)
            self.db.executemany(attr_sql, attr_rows)
        else:
            from repro.serving.bulk import iter_chunks

            for batch in iter_chunks(edge_rows, chunk_rows):
                self.db.executemany(edge_sql, batch)
            for batch in iter_chunks(attr_rows, chunk_rows):
                self.db.executemany(attr_sql, batch)
        self.db.execute(
            "UPDATE docs SET node_count = ? WHERE id = ?", (count, doc_id)
        )
        return doc_id, count

    def resident_documents(self) -> dict[int, tuple[Document, int]] | None:
        """``doc_id -> (Document, base)`` when every stored document was
        loaded through this instance (see
        :meth:`ShreddedStore.resident_documents`)."""
        if not self._documents_resident:
            return None
        return {
            doc_id: (doc, self._document_bases[doc_id])
            for doc_id, doc in self.documents.items()
        }

    def verify_integrity(self) -> list[IntegrityIssue]:
        """Store-wide referential checks (diagnostics)."""
        return check_referential_integrity(self.db, ["edge"])

    def total_elements(self) -> int:
        """Number of stored element rows."""
        row = self.db.query_one("SELECT COUNT(*) FROM edge")
        return int(row[0])
