"""The `Paths` relation — the root-to-node path index of Section 3.1.

All distinct root-to-node label paths of the stored documents live in one
relation, ``paths(id, path)``; every mapping relation carries a
``path_id`` foreign key into it.  The index fills gradually during
insertion, exactly as the paper describes, with an in-memory cache so
loading is one lookup per element.

The cache is guarded by a lock: translation (which may run on pool
worker threads) reads it while a loader thread fills it.  All writes to
the relation itself still belong to the store's single writer
connection.
"""

from __future__ import annotations

import threading
from typing import Iterable

from repro.storage.database import Database

PATHS_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS paths (
    id   INTEGER PRIMARY KEY,
    path TEXT NOT NULL UNIQUE
)
"""


class PathIndex:
    """Manages the ``paths`` relation of one database."""

    def __init__(self, db: Database):
        self.db = db
        db.execute(PATHS_TABLE_DDL)
        self._lock = threading.Lock()
        self._cache: dict[str, int] = {
            path: path_id
            for path_id, path in db.query("SELECT id, path FROM paths")
        }

    def ensure(self, path: str) -> int:
        """Id of ``path``, inserting it on first sight."""
        with self._lock:
            path_id = self._cache.get(path)
        if path_id is not None:
            return path_id
        cursor = self.db.execute(
            "INSERT INTO paths (path) VALUES (?)", (path,)
        )
        path_id = int(cursor.lastrowid)
        with self._lock:
            self._cache[path] = path_id
        return path_id

    def ensure_many(self, paths: Iterable[str]) -> dict[str, int]:
        """Ids for all of ``paths``, inserting the unseen ones in one
        batch (the bulk-load fast path: one ``executemany`` instead of a
        round-trip per new path)."""
        wanted = list(dict.fromkeys(paths))
        with self._lock:
            missing = [p for p in wanted if p not in self._cache]
        if missing:
            self.db.executemany(
                "INSERT OR IGNORE INTO paths (path) VALUES (?)",
                [(p,) for p in missing],
            )
            fetched = {}
            for path in missing:
                row = self.db.query_one(
                    "SELECT id FROM paths WHERE path = ?", (path,)
                )
                fetched[path] = int(row[0])
            with self._lock:
                self._cache.update(fetched)
        with self._lock:
            return {p: self._cache[p] for p in wanted}

    def refresh(self) -> None:
        """Rebuild the in-memory cache from the database.

        Required after a rolled-back load: paths inserted inside the
        aborted savepoint are gone from the relation but would otherwise
        linger in the cache, handing out ids that reference nothing.
        """
        rebuilt = {
            path: path_id
            for path_id, path in self.db.query("SELECT id, path FROM paths")
        }
        with self._lock:
            self._cache = rebuilt

    def lookup(self, path: str) -> int | None:
        """Id of ``path`` if present."""
        with self._lock:
            return self._cache.get(path)

    def all_paths(self) -> dict[str, int]:
        """Snapshot of the whole index (path -> id)."""
        with self._lock:
            return dict(self._cache)

    def __len__(self) -> int:
        with self._lock:
            return len(self._cache)
