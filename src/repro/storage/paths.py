"""The `Paths` relation — the root-to-node path index of Section 3.1.

All distinct root-to-node label paths of the stored documents live in one
relation, ``paths(id, path)``; every mapping relation carries a
``path_id`` foreign key into it.  The index fills gradually during
insertion, exactly as the paper describes, with an in-memory cache so
loading is one lookup per element.
"""

from __future__ import annotations

from repro.storage.database import Database

PATHS_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS paths (
    id   INTEGER PRIMARY KEY,
    path TEXT NOT NULL UNIQUE
)
"""


class PathIndex:
    """Manages the ``paths`` relation of one database."""

    def __init__(self, db: Database):
        self.db = db
        db.execute(PATHS_TABLE_DDL)
        self._cache: dict[str, int] = {
            path: path_id
            for path_id, path in db.query("SELECT id, path FROM paths")
        }

    def ensure(self, path: str) -> int:
        """Id of ``path``, inserting it on first sight."""
        path_id = self._cache.get(path)
        if path_id is not None:
            return path_id
        cursor = self.db.execute(
            "INSERT INTO paths (path) VALUES (?)", (path,)
        )
        path_id = int(cursor.lastrowid)
        self._cache[path] = path_id
        return path_id

    def refresh(self) -> None:
        """Rebuild the in-memory cache from the database.

        Required after a rolled-back load: paths inserted inside the
        aborted savepoint are gone from the relation but would otherwise
        linger in the cache, handing out ids that reference nothing.
        """
        self._cache = {
            path: path_id
            for path_id, path in self.db.query("SELECT id, path FROM paths")
        }

    def lookup(self, path: str) -> int | None:
        """Id of ``path`` if present."""
        return self._cache.get(path)

    def all_paths(self) -> dict[str, int]:
        """Snapshot of the whole index (path -> id)."""
        return dict(self._cache)

    def __len__(self) -> int:
        return len(self._cache)
