"""Primitives of the bulk-load fast path.

Initial loads are write-only and easily re-run, so they can trade
durability for speed while they run: :func:`bulk_pragmas` turns off
fsyncs (``synchronous=OFF``) and keeps spill structures in memory
(``temp_store=MEMORY``) for the duration of a load, then restores the
connection's previous settings — the store integrity-checks the loaded
rows before the scope ends, so a crash mid-load loses only the load
itself, never a previously committed state.  :func:`iter_chunks` slices
row streams into bounded ``executemany`` batches.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Sequence

from repro.storage.database import Database

#: Rows per ``executemany`` batch during bulk loads.
DEFAULT_CHUNK_ROWS = 512


@contextmanager
def bulk_pragmas(db: Database) -> Iterator[None]:
    """Scope with ``synchronous=OFF`` / ``temp_store=MEMORY``; the
    previous values are restored on exit (success or failure).

    Callers must commit inside the scope — changing ``synchronous``
    mid-transaction is undefined, so the restore has to happen back in
    autocommit mode.
    """
    previous_sync = db.query_one("PRAGMA synchronous")[0]
    previous_temp = db.query_one("PRAGMA temp_store")[0]
    db.execute("PRAGMA synchronous = OFF")
    db.execute("PRAGMA temp_store = MEMORY")
    try:
        yield
    finally:
        db.execute(f"PRAGMA synchronous = {int(previous_sync)}")  # static-ok: sql-interp
        db.execute(f"PRAGMA temp_store = {int(previous_temp)}")  # static-ok: sql-interp


def iter_chunks(
    rows: Sequence, chunk_rows: int = DEFAULT_CHUNK_ROWS
) -> Iterator[Sequence]:
    """Yield ``rows`` in slices of at most ``chunk_rows``."""
    if chunk_rows < 1:
        raise ValueError(f"chunk_rows must be >= 1, got {chunk_rows}")
    for start in range(0, len(rows), chunk_rows):
        yield rows[start:start + chunk_rows]
