"""Document-sharded storage: one logical store over N SQLite files.

BENCH_PR2/PR4 showed thread fan-out *degrades* throughput on this
workload, so scaling reads means processes — and processes want
independent database files.  A :class:`ShardedStore` places whole
documents across ``N`` sibling SQLite shard files by hashing the
document's load ordinal and name (the paper's Section 4.5
path-partitioned layout makes whole-document placement natural: every
root-to-node path, and therefore every query fragment, stays resolvable
inside a single shard).  All shards share one schema, so a single
translated SQL statement — which filters `Paths` by *string* pattern,
never by shard-local ``path_id`` values — runs unchanged on every
shard.

Layout of a sharded store directory::

    store/
      manifest.json            # shard count, schema, doc registry, generation
      shard-0000.db            # ShreddedStore files (WAL)
      shard-0000.manifest.json # per-shard integrity digest
      ...

The top-level manifest carries the **document registry**: for each
loaded document its global ``doc_id`` and global element-id ``base``
(assigned sequentially in load order, exactly as a single
:class:`~repro.storage.schema_aware.ShreddedStore` would) plus the
shard-local ids the shard file assigned.  Scatter-gather execution
remaps shard-local rows through this registry, so a sharded store's
results are **bit-identical** to a single store loaded with the same
documents in the same order — which is what lets the chaos tests verify
every degraded answer against the native oracle.

Per-shard manifests carry a content digest (document registry plus
relation row counts) recomputed by :meth:`ShardedStore.verify_shard`;
a corrupt or swapped shard file is detected before it can serve wrong
rows.
"""

from __future__ import annotations

import hashlib
import json
import os
import zlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ShardError, StorageError, StoreIntegrityError
from repro.resilience.policy import ResiliencePolicy
from repro.schema.marking import SchemaMarking
from repro.schema.model import Schema
from repro.stats.summary import PathSummary
from repro.storage.database import Database
from repro.storage.schema_aware import SchemaAwareMapping, ShreddedStore
from repro.xmltree.nodes import Document

#: Manifest format version (bumped on incompatible layout changes).
MANIFEST_VERSION = 1

#: Default shard count for :meth:`ShardedStore.create`.
DEFAULT_SHARDS = 4


def shard_of(ordinal: int, name: str, shards: int) -> int:
    """Deterministic hash placement of one document.

    ``ordinal`` is the document's global load ordinal (its global
    ``doc_id``), ``name`` its document name; together they spread
    repeated names and keep placement stable across reopenings.
    """
    return zlib.crc32(f"{ordinal}:{name}".encode()) % shards


def shard_filename(index: int) -> str:
    """Filename of shard ``index`` inside the store directory."""
    return f"shard-{index:04d}.db"


def shard_manifest_filename(index: int) -> str:
    """Filename of shard ``index``'s integrity manifest."""
    return f"shard-{index:04d}.manifest.json"


@dataclass(frozen=True)
class DocEntry:
    """Registry entry of one loaded document."""

    #: Global document id (sequential in load order, 1-based).
    doc_id: int
    name: str
    #: Shard index holding the document's rows.
    shard: int
    #: ``doc_id`` the shard file assigned locally.
    local_doc_id: int
    #: Global element-id base (cumulative node count in load order).
    base: int
    #: Element-id base the shard file assigned locally.
    local_base: int
    node_count: int

    def to_json(self) -> dict:
        return {
            "doc": self.doc_id,
            "name": self.name,
            "shard": self.shard,
            "local_doc": self.local_doc_id,
            "base": self.base,
            "local_base": self.local_base,
            "nodes": self.node_count,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "DocEntry":
        return cls(
            doc_id=int(payload["doc"]),
            name=str(payload["name"]),
            shard=int(payload["shard"]),
            local_doc_id=int(payload["local_doc"]),
            base=int(payload["base"]),
            local_base=int(payload["local_base"]),
            node_count=int(payload["nodes"]),
        )


class ShardedStore:
    """N :class:`ShreddedStore` shard files behind one document-hash
    placement layer.

    Writes go through the shard's own (single-process) store object;
    reads are meant to be served by the :class:`~repro.serving.
    supervisor.ShardRuntime` worker fleet via :class:`~repro.serving.
    scatter.ShardedEngine`.  Shard connections open lazily, so a store
    with one corrupt shard file still opens — the healthy shards keep
    serving and the corrupt one surfaces as a per-shard failure.
    """

    def __init__(
        self,
        directory: str,
        schema: Schema,
        shard_count: int,
        entries: list[DocEntry],
        generation: int,
        policy: ResiliencePolicy | None = None,
        fresh: bool = True,
    ):
        self.directory = directory
        self.schema = schema
        #: Shared relational mapping/marking — what the translation
        #: adapter consumes; identical across shards by construction.
        self.mapping = SchemaAwareMapping(schema)
        self.marking = SchemaMarking(schema)
        self.shard_count = shard_count
        self.policy = policy
        self._entries = entries
        self._generation = generation
        self._shards: dict[int, ShreddedStore] = {}
        #: In-memory documents loaded through this instance (global
        #: doc_id -> Document); feeds the degraded native fallback.
        self.documents: dict[int, Document] = {}
        # Fallback answers are only trustworthy when every registered
        # document is resident (loaded through this very instance).
        self._documents_resident = fresh and not entries

    # -- construction ------------------------------------------------------------

    @classmethod
    def create(
        cls,
        directory: str,
        schema: Schema,
        shards: int = DEFAULT_SHARDS,
        policy: ResiliencePolicy | None = None,
    ) -> "ShardedStore":
        """Create a fresh sharded store directory with ``shards`` empty
        shard files.

        :raises StorageError: when the directory already holds a store.
        """
        if shards < 1:
            raise StorageError(f"shard count must be >= 1, got {shards}")
        schema.validate()
        os.makedirs(directory, exist_ok=True)
        manifest_path = os.path.join(directory, "manifest.json")
        if os.path.exists(manifest_path):
            raise StorageError(
                f"{directory!r} already holds a sharded store manifest"
            )
        store = cls(directory, schema, shards, [], 0, policy=policy)
        for index in range(shards):
            shard = ShreddedStore.create(
                Database.open(store.shard_path(index), policy=policy),
                schema,
            )
            store._shards[index] = shard
            store._write_shard_manifest(index)
        store._write_manifest()
        return store

    @classmethod
    def open(
        cls, directory: str, policy: ResiliencePolicy | None = None
    ) -> "ShardedStore":
        """Reattach to a directory previously built by :meth:`create`.

        Shard databases open lazily; only the manifest is read here, so
        a corrupt shard file does not prevent opening the store.

        :raises StorageError: when the directory has no manifest or the
            manifest version is unknown.
        """
        manifest_path = os.path.join(directory, "manifest.json")
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except FileNotFoundError:
            raise StorageError(
                f"{directory!r} holds no sharded store manifest; was it "
                f"created by ShardedStore.create()?"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise StorageError(
                f"unreadable sharded store manifest {manifest_path!r}: {exc}"
            ) from exc
        if manifest.get("version") != MANIFEST_VERSION:
            raise StorageError(
                f"unsupported sharded store manifest version "
                f"{manifest.get('version')!r}"
            )
        schema = Schema.from_dict(manifest["schema"])
        entries = [DocEntry.from_json(doc) for doc in manifest["docs"]]
        return cls(
            directory,
            schema,
            int(manifest["shards"]),
            entries,
            int(manifest["generation"]),
            policy=policy,
            fresh=False,
        )

    # -- paths and shard access ----------------------------------------------------

    def shard_path(self, index: int) -> str:
        """Filesystem path of shard ``index``'s database file."""
        self._check_shard_index(index)
        return os.path.join(self.directory, shard_filename(index))

    @property
    def shard_paths(self) -> list[str]:
        """Database file paths of all shards, in shard order."""
        return [self.shard_path(index) for index in range(self.shard_count)]

    def shard_store(self, index: int) -> ShreddedStore:
        """The writer-side :class:`ShreddedStore` of shard ``index``
        (opened on first use)."""
        self._check_shard_index(index)
        shard = self._shards.get(index)
        if shard is None:
            shard = ShreddedStore.open(
                Database.open(self.shard_path(index), policy=self.policy)
            )
            self._shards[index] = shard
        return shard

    def _check_shard_index(self, index: int) -> None:
        if not 0 <= index < self.shard_count:
            raise ShardError(
                f"shard index {index} out of range "
                f"(store has {self.shard_count} shard(s))",
                shard=index,
            )

    # -- registry -----------------------------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic mutation counter (persisted in the manifest); the
        sharded result cache keys on it."""
        return self._generation

    def _bump_generation(self) -> None:
        self._generation += 1

    @property
    def doc_entries(self) -> list[DocEntry]:
        """The document registry, in global load order."""
        return list(self._entries)

    def remap_table(self) -> dict[tuple[int, int], DocEntry]:
        """``(shard, local_doc_id) -> DocEntry`` lookup used by the
        scatter-gather merge to translate shard-local row ids into
        global ids."""
        return {
            (entry.shard, entry.local_doc_id): entry
            for entry in self._entries
        }

    def document_count(self) -> int:
        return len(self._entries)

    def to_document_node_id(self, element_id: int) -> tuple[int, int]:
        """Split a global element id into ``(doc_id, node_id)`` — the
        same contract as :meth:`ShreddedStore.to_document_node_id`."""
        for entry in self._entries:
            if entry.base <= element_id < entry.base + entry.node_count:
                return entry.doc_id, element_id - entry.base
        raise StorageError(
            f"element id {element_id} belongs to no registered document"
        )

    def total_elements(self) -> int:
        """Total element count across all registered documents."""
        return sum(entry.node_count for entry in self._entries)

    def _next_doc_id(self) -> int:
        return len(self._entries) + 1

    def _next_base(self) -> int:
        if not self._entries:
            return 0
        last = self._entries[-1]
        return last.base + last.node_count

    # -- loading ------------------------------------------------------------------

    def load(self, document: Document) -> int:
        """Shred ``document`` into its hash-assigned shard.

        :returns: the assigned **global** ``doc_id``.
        """
        return self._load_documents([document], bulk=False)[0]

    def bulk_load(self, documents: Sequence[Document]) -> list[int]:
        """Load many documents, grouped per shard through each shard's
        bulk fast path.  Returns global ``doc_id``s in input order."""
        return self._load_documents(list(documents), bulk=True)

    def _load_documents(
        self, documents: list[Document], bulk: bool
    ) -> list[int]:
        if not documents:
            return []
        placements: list[tuple[int, int, int, Document]] = []
        doc_id = self._next_doc_id()
        base = self._next_base()
        for document in documents:
            shard = shard_of(doc_id, document.name, self.shard_count)
            placements.append((doc_id, base, shard, document))
            doc_id += 1
            base += document.element_count()
        by_shard: dict[int, list[tuple[int, int, Document]]] = {}
        for global_doc, global_base, shard, document in placements:
            by_shard.setdefault(shard, []).append(
                (global_doc, global_base, document)
            )
        new_entries: dict[int, DocEntry] = {}
        touched: list[int] = []
        for shard, plan in sorted(by_shard.items()):
            store = self.shard_store(shard)
            docs = [document for _, _, document in plan]
            if bulk:
                local_ids = store.bulk_load(docs)
            else:
                local_ids = [store.load(document) for document in docs]
            for (global_doc, global_base, document), local_id in zip(
                plan, local_ids
            ):
                new_entries[global_doc] = DocEntry(
                    doc_id=global_doc,
                    name=document.name,
                    shard=shard,
                    local_doc_id=local_id,
                    base=global_base,
                    local_base=store.doc_base(local_id),
                    node_count=document.element_count(),
                )
            touched.append(shard)
        # Registry entries join in global load order regardless of the
        # per-shard grouping above.
        for global_doc, _, _, document in placements:
            self._entries.append(new_entries[global_doc])
            self.documents[global_doc] = document
        self._bump_generation()
        for shard in touched:
            self._write_shard_manifest(shard)
        self._write_manifest()
        return [global_doc for global_doc, _, _, _ in placements]

    def delete_document(self, doc_id: int) -> int:
        """Remove one document's rows from its shard and the registry.

        Later documents keep their global ids/bases, exactly like
        :meth:`ShreddedStore.delete_document` keeps its id space.

        :returns: the number of element rows removed.
        """
        entry = next(
            (e for e in self._entries if e.doc_id == doc_id), None
        )
        if entry is None:
            raise StorageError(f"unknown doc_id {doc_id}")
        removed = self.shard_store(entry.shard).delete_document(
            entry.local_doc_id
        )
        self._entries.remove(entry)
        self.documents.pop(doc_id, None)
        self._documents_resident = False
        self._bump_generation()
        self._write_shard_manifest(entry.shard)
        self._write_manifest()
        return removed

    def analyze(self) -> list["PathSummary"]:
        """Refresh every shard's statistics, then run ``ANALYZE``.

        For each shard this recomputes and persists the path summary
        (the costed optimizer passes' input), cross-checks the summary's
        element total against the shard's stored documents, and finally
        runs SQLite's own ``ANALYZE`` so both planners — ours and
        SQLite's — see fresh statistics.  Call after a large load,
        before serving.

        :returns: the refreshed per-shard summaries, in shard order.
        :raises StoreIntegrityError: when a recomputed summary
            disagrees with the shard's document registry.
        """
        summaries: list[PathSummary] = []
        for index in range(self.shard_count):
            store = self.shard_store(index)
            summary = store.collect_statistics()
            expected = store.total_elements()
            if summary.total_elements != expected:
                raise StoreIntegrityError(
                    f"shard {index} path summary counts "
                    f"{summary.total_elements} element(s) but the shard "
                    f"stores {expected}"
                )
            store.db.execute("ANALYZE")
            store.db.commit()
            summaries.append(summary)
        return summaries

    def statistics_staleness(self) -> list[bool]:
        """Per-shard statistics staleness, in shard order (``True`` when
        a shard has no summary or mutated since its last refresh)."""
        return [
            self.shard_store(index).statistics_stale
            for index in range(self.shard_count)
        ]

    @property
    def stats_version(self) -> tuple[int, int] | None:
        """Store-level statistics version for cache fingerprints:
        ``(sum of shard epochs, store generation)``, or ``None`` when
        any shard has no summary (the merged summary is then
        unavailable too).  An unreadable shard counts as "no summary"
        rather than failing: statistics are advisory, and a corrupt
        shard must surface through the serving ladder, not here."""
        epochs = 0
        for index in range(self.shard_count):
            try:
                version = self.shard_store(index).stats_version
            except StorageError:
                return None
            if version is None:
                return None
            epochs += version[0]
        return (epochs, self._generation)

    def path_summary(self) -> PathSummary | None:
        """Corpus-wide statistics: the per-shard summaries merged
        (path/relation/document counts summed), or ``None`` when any
        shard has no summary.  Shards share one schema, so summing
        per-path counts is exact."""
        version = self.stats_version
        if version is None:
            return None
        from repro.stats.summary import PathStats

        stats: dict[str, PathStats] = {}
        relation_counts: dict[str, int] = {}
        document_count = 0
        for index in range(self.shard_count):
            summary = self.shard_store(index).path_summary()
            if summary is None:
                return None
            document_count += summary.document_count
            for table, rows in summary.relation_counts.items():
                relation_counts[table] = (
                    relation_counts.get(table, 0) + rows
                )
            for path, entry in summary.stats.items():
                previous = stats.get(path)
                stats[path] = PathStats(
                    path=path,
                    element_count=(
                        previous.element_count if previous else 0
                    ) + entry.element_count,
                    doc_count=(previous.doc_count if previous else 0)
                    + entry.doc_count,
                    value_count=(
                        previous.value_count if previous else 0
                    ) + entry.value_count,
                )
        return PathSummary(
            version=version,
            document_count=document_count,
            relation_counts=relation_counts,
            stats=stats,
        )

    # -- fallback support ---------------------------------------------------------

    def resident_documents(self) -> dict[int, tuple[Document, int]] | None:
        """``global doc_id -> (Document, global base)`` when every
        registered document is resident in memory (loaded through this
        instance); ``None`` otherwise.  Same contract as
        :meth:`ShreddedStore.resident_documents` — the degraded native
        fallback declines rather than serve stale answers."""
        if not self._documents_resident:
            return None
        by_id = {entry.doc_id: entry for entry in self._entries}
        if set(by_id) != set(self.documents):
            return None
        return {
            doc_id: (document, by_id[doc_id].base)
            for doc_id, document in self.documents.items()
        }

    # -- integrity ----------------------------------------------------------------

    def shard_digest(self, index: int) -> str:
        """Content digest of shard ``index``: the shard's document rows
        plus per-relation row counts, hashed canonically.  Stable across
        WAL checkpoints (unlike a digest of the raw file bytes)."""
        store = self.shard_store(index)
        docs = store.db.query(
            "SELECT id, name, base, node_count FROM docs ORDER BY id"
        )
        payload = json.dumps(
            {
                "docs": [list(row) for row in docs],
                "relations": store.relation_counts(),
            },
            sort_keys=True,
        )
        return "sha256:" + hashlib.sha256(payload.encode()).hexdigest()

    def verify_shard(self, index: int) -> None:
        """Recompute shard ``index``'s digest and compare it with the
        per-shard manifest.

        :raises StoreIntegrityError: on digest mismatch (tampered or
            swapped shard file) or an unreadable shard manifest.
        :raises StorageError: when the shard database itself is
            unreadable (corrupt file).
        """
        manifest_path = os.path.join(
            self.directory, shard_manifest_filename(index)
        )
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreIntegrityError(
                f"shard {index} manifest unreadable: {exc}"
            ) from exc
        recorded = manifest.get("digest")
        try:
            actual = self.shard_digest(index)
        except StorageError:
            raise
        except Exception as exc:
            # A corrupt file can fail in arbitrary ways below sqlite3
            # (decode errors on pragma replies, malformed page errors);
            # normalize them all to the storage hierarchy.
            raise StorageError(
                f"shard {index} database unreadable: {exc}"
            ) from exc
        if recorded != actual:
            raise StoreIntegrityError(
                f"shard {index} digest mismatch: manifest records "
                f"{recorded!r} but the file computes {actual!r}"
            )

    def verify_integrity(self) -> list[str]:
        """Digest-check every shard; returns one message per failing
        shard (empty = healthy)."""
        problems = []
        for index in range(self.shard_count):
            try:
                self.verify_shard(index)
            except (StoreIntegrityError, StorageError) as exc:
                problems.append(f"shard {index}: {exc}")
        return problems

    # -- manifests ----------------------------------------------------------------

    def _write_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "shards": self.shard_count,
            "generation": self._generation,
            "schema": self.schema.to_dict(),
            "docs": [entry.to_json() for entry in self._entries],
        }
        self._write_json(os.path.join(self.directory, "manifest.json"), payload)

    def _write_shard_manifest(self, index: int) -> None:
        store = self.shard_store(index)
        payload = {
            "shard": index,
            "file": shard_filename(index),
            "digest": self.shard_digest(index),
            "documents": store.db.query_one("SELECT COUNT(*) FROM docs")[0],
            "elements": store.total_elements(),
        }
        self._write_json(
            os.path.join(self.directory, shard_manifest_filename(index)),
            payload,
        )

    @staticmethod
    def _write_json(path: str, payload: dict) -> None:
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    # -- lifecycle ----------------------------------------------------------------

    def close(self) -> None:
        """Close every open shard connection."""
        for shard in self._shards.values():
            shard.db.close()
        self._shards.clear()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __iter__(self) -> Iterator[DocEntry]:
        return iter(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedStore({self.directory!r}, shards={self.shard_count}, "
            f"docs={len(self._entries)}, generation={self._generation})"
        )
