"""A pool of read-only connections for concurrent query serving.

PR 1 switched file-backed stores to WAL journaling, which is exactly the
mode under which SQLite allows many readers alongside one writer.  A
:class:`ConnectionPool` opens N sibling connections to the store's
database file — each ``read_only``, each registering ``regexp_like``,
each running statements under the same :class:`~repro.resilience.
ResiliencePolicy` retry/guard machinery — and hands them out one per
query.  Because every pooled connection is a separate ``sqlite3``
handle, queries dispatched from different threads genuinely overlap
inside SQLite (the C library releases the GIL while stepping).
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import StorageError
from repro.resilience.policy import ResiliencePolicy
from repro.storage.database import Database

#: Default number of pooled connections.
DEFAULT_POOL_SIZE = 4


class ConnectionPool:
    """``size`` read-only :class:`Database` connections to one file.

    Check a connection out with :meth:`acquire` (a context manager);
    it returns to the pool when the block exits, even on error.  The
    pool is safe to share across threads — that is its whole point.
    """

    def __init__(
        self,
        path: str,
        size: int = DEFAULT_POOL_SIZE,
        policy: ResiliencePolicy | None = None,
        timeout: float = 30.0,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.path = path
        self.size = size
        #: Seconds :meth:`acquire` blocks for a free connection before
        #: raising :class:`StorageError`.
        self.timeout = timeout
        self._closed = False
        self._lock = threading.Lock()
        self._checkouts = 0
        # LIFO: the most recently used connection has the warmest
        # page cache.
        self._idle: queue.LifoQueue[Database] = queue.LifoQueue()
        self._all: list[Database] = []
        try:
            for _ in range(size):
                db = Database.open(
                    path,
                    policy=policy,
                    read_only=True,
                    check_same_thread=False,
                )
                self._all.append(db)
                self._idle.put(db)
        except BaseException:
            for db in self._all:
                db.close()
            raise

    @classmethod
    def for_store(
        cls,
        store,
        size: int = DEFAULT_POOL_SIZE,
        policy: ResiliencePolicy | None = None,
    ) -> "ConnectionPool":
        """A pool over the file backing ``store`` (any object with a
        ``db`` attribute), inheriting the store's policy unless one is
        given.

        :raises StorageError: when the store is in-memory — there is no
            file for sibling connections to open.
        """
        path = store.db.path
        if path is None:
            raise StorageError(
                "cannot pool an in-memory database; open the store from "
                "a file to serve it concurrently"
            )
        return cls(
            path, size=size, policy=policy if policy else store.db.policy
        )

    @contextmanager
    def acquire(self, timeout: float | None = None) -> Iterator[Database]:
        """Check out one connection; blocks while all are busy.

        :raises StorageError: when the pool is closed or no connection
            frees up within the timeout.
        """
        if self._closed:
            raise StorageError("connection pool is closed")
        wait = self.timeout if timeout is None else timeout
        try:
            db = self._idle.get(timeout=wait)
        except queue.Empty:
            raise StorageError(
                f"no pooled connection became available within {wait:g}s "
                f"(pool size {self.size})"
            ) from None
        with self._lock:
            self._checkouts += 1
        try:
            yield db
        finally:
            self._idle.put(db)

    @property
    def checkouts(self) -> int:
        """Total number of successful checkouts so far."""
        with self._lock:
            return self._checkouts

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Close every pooled connection.  In-flight checkouts keep
        their connection until they return it; new acquires fail."""
        self._closed = True
        for db in self._all:
            db.close()

    def __len__(self) -> int:
        return self.size

    def __enter__(self) -> "ConnectionPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return f"ConnectionPool({self.path!r}, size={self.size}, {state})"
