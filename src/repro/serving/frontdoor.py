"""Asyncio front door for the sharded worker fleet.

:class:`AsyncShardedEngine` lets a *single-threaded* event-loop process
hold thousands of in-flight XPath queries against the
:class:`~repro.serving.supervisor.ShardRuntime` fleet — where the
blocking :class:`~repro.serving.scatter.ShardedEngine` spends one OS
thread per admitted query waiting on the transport, the front door
spends none: worker completions are bridged straight onto the event
loop through the supervisor's ``on_complete`` callbacks and resolved
into futures.

Three mechanisms make up the tentpole:

**Batched admission (tick coalescing).**  Queries submitted in the same
event-loop iteration — one ``asyncio.gather``, many concurrent client
tasks, a burst drained from a socket — are coalesced into a single
*tick* and scattered as **one** ``submit_batch`` message per shard, so
queue/marshal overhead is paid per burst instead of per query.  The
tick flush is scheduled with ``loop.call_soon`` when the first query of
a burst arrives; there is no background pump task to leak or poll.

**Awaitable backpressure.**  Admission is an ``asyncio.Semaphore`` of
``max_inflight`` slots.  With ``admission_timeout`` set, a query that
cannot get a slot in time fails fast with
:class:`~repro.errors.AdmissionRejectedError` — the same contract as
the blocking engine.  With ``admission_timeout=None`` the await simply
parks until a slot frees: thousands of submitted queries then occupy a
few pending futures each instead of a thread each, which is what bounds
memory at high concurrency.

**The degradation ladder, async.**  Hedging, per-shard retries, circuit
breakers, flagged partials and the native fallback are the *same*
ladder (and the same breaker/stat objects) as the blocking engine —
re-expressed over futures: a batched scatter is hedged to a second
replica after ``hedge_delay`` of silence, a statement its batch could
not answer falls to a per-shard hedge/retry ladder driven by
``asyncio.wait``, and a worker crash resolves waiters immediately via
the supervisor's lost-request callbacks (no polling).  Deadlines travel
as absolute expiries; ``asyncio.CancelledError`` propagates through
every rung — a cancelled await releases its admission slot and abandons
its in-flight requests (hedges included) on the way out.

Results are bit-identical to the blocking engine (same translation,
same merge, same completeness flags) — the chaos suite asserts this
against the single-store oracle under worker kills mid-await.
"""

from __future__ import annotations

import asyncio
import marshal
import time
from typing import AsyncIterator, Optional, Union

from repro.core.engine import (
    QueryResult,
    _normalize_many_args,
)
from repro.core.translator import TranslationResult
from repro.errors import AdmissionRejectedError
from repro.serving.scatter import ServingConfig, ShardedEngine, ShardOutcome
from repro.xpath.ast import XPathExpr

#: Grace added to a batch's worker-side timeout before the loop-side
#: watchdog gives the batch up (covers response marshalling latency).
_BATCH_GRACE = 0.25


def _resolve(future: "asyncio.Future", response: Optional[dict]) -> None:
    """Loop-side half of the callback bridge (idempotent: a waiter the
    caller already abandoned or timed out is left alone)."""
    if not future.done():
        future.set_result(response)


class _Tick:
    """One coalescing window: every query enqueued in the same
    event-loop iteration, scattered as one batch per shard."""

    __slots__ = ("sqls", "expiries", "futures", "hedge")

    def __init__(self) -> None:
        self.sqls: list[str] = []
        self.expiries: list[Optional[float]] = []
        #: Per item, one future per shard resolving to the item's
        #: batched :class:`ShardOutcome` — or ``None`` when the item
        #: must fall to the per-shard ladder.
        self.futures: list[list[asyncio.Future]] = []
        #: Batches hedge when *any* coalesced item is above the costed
        #: hedge gate (the duplicate is shared, so one eligible item
        #: justifies it).
        self.hedge: bool = False


class AsyncShardedEngine:
    """Asyncio counterpart of :class:`~repro.serving.scatter.
    ShardedEngine`, sharing its planner, breakers, result cache and
    degradation counters.

    Must be constructed on a running event loop and used only from that
    loop.  Obtain one with :meth:`serve`, by wrapping an existing
    blocking engine (``AsyncShardedEngine(engine)``), or implicitly via
    :meth:`ShardedEngine.execute_async` /
    :func:`repro.connect` + :meth:`~repro.api.Engine.execute_async`.
    """

    def __init__(
        self, engine: ShardedEngine, own_engine: bool = False
    ) -> None:
        self._engine = engine
        self._own_engine = own_engine
        self._loop = asyncio.get_running_loop()
        max_inflight = max(1, engine.config.max_inflight)
        self._admission = asyncio.Semaphore(max_inflight)
        self._tick: Optional[_Tick] = None
        # Primary-replica rotation for batched scatters (loop-thread
        # only); hedges go to the next replica, like the sync ladder.
        self._round_robin = 0
        self._closed = False

    # -- construction ------------------------------------------------------------

    @classmethod
    async def serve(
        cls,
        store,
        config: Optional[ServingConfig] = None,
        **kwargs,
    ) -> "AsyncShardedEngine":
        """Spawn a worker fleet over ``store`` (forking happens off-loop
        in the default executor) and wrap it; closing the async engine
        closes the fleet."""
        loop = asyncio.get_running_loop()
        engine = await loop.run_in_executor(
            None,
            lambda: ShardedEngine.serve(store, config=config, **kwargs),
        )
        return cls(engine, own_engine=True)

    @property
    def config(self) -> ServingConfig:
        return self._engine.config

    @property
    def stats(self) -> dict:
        """The shared degradation counters (same dict object as the
        wrapped blocking engine's)."""
        return self._engine.stats

    @property
    def engine(self) -> ShardedEngine:
        """The wrapped blocking engine (planner, breakers, fleet)."""
        return self._engine

    def translate(
        self, expression: Union[str, XPathExpr]
    ) -> TranslationResult:
        return self._engine.translate(expression)

    def explain(self, expression: Union[str, XPathExpr]):
        return self._engine.explain(expression)

    async def close(self) -> None:
        """Shut down (idempotent).  Closes the wrapped engine — and its
        fleet, when owned — off-loop; in-flight queries fail with their
        usual ladder errors as workers disappear."""
        if self._closed:
            return
        self._closed = True
        if self._own_engine:
            await asyncio.get_running_loop().run_in_executor(
                None, self._engine.close
            )

    async def __aenter__(self) -> "AsyncShardedEngine":
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # -- admission ---------------------------------------------------------------

    async def _admit(self) -> None:
        timeout = self._engine.config.admission_timeout
        if timeout is None:
            await self._admission.acquire()
            return
        try:
            await asyncio.wait_for(self._admission.acquire(), timeout)
        except asyncio.TimeoutError:
            self._engine._count("rejections")
            raise AdmissionRejectedError(
                f"admission queue full: "
                f"{self._engine.config.max_inflight} queries in flight "
                f"and none finished within {timeout:g}s"
            ) from None

    # -- execution ---------------------------------------------------------------

    async def execute(
        self,
        expression: Union[str, XPathExpr],
        *,
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Awaitable scatter-gather with the full degradation ladder.

        Semantics match :meth:`ShardedEngine.execute` — same results,
        same ``complete``/``failed_shards`` contract, same typed errors
        — plus: concurrently-submitted queries share batched scatters,
        and cancelling the await releases the admission slot and
        abandons the query's in-flight requests.

        :raises AdmissionRejectedError: no slot within
            ``admission_timeout`` (``None`` waits without limit).
        :raises ShardUnavailableError: every shard failed and the
            native fallback was disabled or declined.
        """
        await self._admit()
        try:
            self._engine._count("queries")
            return await self._execute_admitted(expression, deadline)
        finally:
            self._admission.release()

    async def execute_many(
        self,
        expressions,
        *args,
        deadline: Optional[float] = None,
        concurrency: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> list[QueryResult]:
        """Run many queries, results in input order.

        Like the blocking engine's batch path, the whole call occupies
        **one** admission slot and every statement lands in the same
        coalescing tick — one ``submit_batch`` per shard.  ``deadline``
        budgets the whole call; ``concurrency`` is accepted for surface
        compatibility (coalescing replaces client-side fan-out).
        """
        deadline, concurrency = _normalize_many_args(
            type(self).__name__, args, deadline, concurrency, max_workers
        )
        expressions = list(expressions)
        if len(expressions) <= 1:
            return [
                await self.execute(expression, deadline=deadline)
                for expression in expressions
            ]
        results: dict[int, QueryResult] = {}
        pending: list[tuple[int, object, TranslationResult]] = []
        for index, expression in enumerate(expressions):
            translation = self.translate(expression)
            if translation.is_empty:
                results[index] = QueryResult(
                    [], translation.projection, served_by="shards"
                )
                continue
            key = self._engine._planner._result_key(expression)
            if key is not None:
                cached = self._engine._planner._result_cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            pending.append((index, expression, translation))
        if pending:
            await self._admit()
            try:
                self._engine._count("queries", len(pending))
                budget = (
                    deadline
                    if deadline is not None
                    else self._engine.config.deadline
                )
                expiry = (
                    time.monotonic() + budget if budget is not None else None
                )
                gathered = await asyncio.gather(
                    *(
                        self._run_translation(expression, translation, expiry)
                        for _, expression, translation in pending
                    )
                )
                for (index, _, _), result in zip(pending, gathered):
                    results[index] = result
            finally:
                self._admission.release()
        return [results[index] for index in range(len(expressions))]

    async def stream(
        self,
        expressions,
        *,
        deadline: Optional[float] = None,
    ) -> AsyncIterator[QueryResult]:
        """Async iterator yielding one :class:`QueryResult` per input
        expression, in input order, each as soon as it (and its
        predecessors) complete.

        Every query is submitted up front — so they coalesce into
        shared batches and admission-control applies per query — but
        the caller consumes results incrementally instead of holding
        the whole list.  Closing the iterator early cancels the
        still-outstanding queries (releasing their admission slots).
        """
        tasks = [
            asyncio.ensure_future(
                self.execute(expression, deadline=deadline)
            )
            for expression in expressions
        ]
        try:
            for task in tasks:
                yield await task
        finally:
            for task in tasks:
                if not task.done():
                    task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    # -- admitted path -----------------------------------------------------------

    async def _execute_admitted(
        self, expression, deadline: Optional[float]
    ) -> QueryResult:
        budget = (
            deadline
            if deadline is not None
            else self._engine.config.deadline
        )
        expiry = time.monotonic() + budget if budget is not None else None
        translation = self.translate(expression)
        if translation.is_empty:
            return QueryResult(
                [], translation.projection, served_by="shards"
            )
        key = self._engine._planner._result_key(expression)
        if key is not None:
            cached = self._engine._planner._result_cache.get(key)
            if cached is not None:
                return cached
        return await self._run_translation(expression, translation, expiry)

    async def _run_translation(
        self,
        expression,
        translation: TranslationResult,
        expiry: Optional[float],
    ) -> QueryResult:
        """Scatter one translated query (batched, then laddered per
        shard), merge, cache, degrade — the async twin of
        :meth:`ShardedEngine._execute_admitted` after admission."""
        engine = self._engine
        hedge = engine._hedge_allowed(translation)
        batched_futures = self._enqueue(translation.sql, expiry, hedge)
        outcomes = list(
            await asyncio.gather(
                *(
                    self._shard_outcome(
                        shard,
                        batched_futures[shard],
                        translation.sql,
                        expiry,
                        hedge,
                    )
                    for shard in range(engine.store.shard_count)
                )
            )
        )
        failures = [outcome for outcome in outcomes if not outcome.ok]
        if len(failures) == engine.store.shard_count:
            # The native fallback evaluates documents in-process: run it
            # (or raise the typed error) off-loop.
            return await self._loop.run_in_executor(
                None,
                lambda: engine._all_shards_failed(
                    expression, translation.projection, failures
                ),
            )
        result = engine._merge(translation, outcomes)
        if result.complete:
            key = engine._planner._result_key(expression)
            engine._planner._cache_result(key, result)
        else:
            engine._count("partials")
        return result

    async def _shard_outcome(
        self,
        shard: int,
        batched: "asyncio.Future",
        sql: str,
        expiry: Optional[float],
        hedge: bool,
    ) -> ShardOutcome:
        """One shard's contribution: the batched attempt first, the
        hedge/retry ladder for whatever the batch could not answer."""
        outcome = await self._await_batched(batched, expiry)
        if outcome is not None and outcome.ok:
            return outcome
        return await self._query_shard(shard, sql, expiry, hedge=hedge)

    @staticmethod
    async def _await_batched(
        future: "asyncio.Future", expiry: Optional[float]
    ) -> Optional[ShardOutcome]:
        if expiry is None:
            return await future
        remaining = expiry - time.monotonic()
        if remaining <= 0:
            return None
        try:
            return await asyncio.wait_for(future, remaining)
        except asyncio.TimeoutError:
            return None

    # -- tick coalescing ---------------------------------------------------------

    def _enqueue(
        self, sql: str, expiry: Optional[float], hedge: bool
    ) -> list["asyncio.Future"]:
        """Join the currently-open tick (opening one — and scheduling
        its flush on the next loop iteration — if needed); returns one
        future per shard for this statement's batched outcome."""
        tick = self._tick
        if tick is None:
            tick = self._tick = _Tick()
            self._loop.call_soon(self._flush)
        futures = [
            self._loop.create_future()
            for _ in range(self._engine.store.shard_count)
        ]
        tick.sqls.append(sql)
        tick.expiries.append(expiry)
        tick.futures.append(futures)
        tick.hedge = tick.hedge or hedge
        return futures

    def _flush(self) -> None:
        """Close the open tick and scatter it: one batch per shard."""
        tick, self._tick = self._tick, None
        if tick is None or not tick.sqls:
            return
        # Worker-side timeout: generous enough for the *longest*-lived
        # item in the tick (a short-deadline item stops waiting at its
        # own expiry; the ladder takes over for it).
        if any(expiry is None for expiry in tick.expiries):
            timeout = None
        else:
            timeout = max(
                max(tick.expiries) - time.monotonic(), 0.001
            )
        for shard in range(self._engine.store.shard_count):
            self._scatter_batch(
                shard,
                tick.sqls,
                [item_futures[shard] for item_futures in tick.futures],
                timeout,
                tick.hedge,
            )

    def _scatter_batch(
        self,
        shard: int,
        sqls: list[str],
        futures: list["asyncio.Future"],
        timeout: Optional[float],
        hedge: bool,
    ) -> None:
        """One hedged batch round-trip to ``shard``; resolves each
        item's future with its :class:`ShardOutcome`, or ``None`` when
        the whole batch needs the per-item ladder (open breaker,
        crashed worker, failed batch)."""
        engine = self._engine
        runtime = engine.runtime
        breaker = engine._breakers[shard]

        def settle(outcomes: Optional[list[ShardOutcome]]) -> None:
            for position, future in enumerate(futures):
                if not future.done():
                    future.set_result(
                        outcomes[position] if outcomes is not None else None
                    )

        if not breaker.allow():
            settle(None)
            return

        state: dict = {
            "done": False,
            "rids": [],
            "lost": set(),
            "hedge_timer": None,
            "watchdog": None,
            "hedge_pending": False,
        }
        primary = self._round_robin % runtime.replicas
        self._round_robin += 1

        def finish(response: Optional[dict], box: Optional[list]) -> None:
            # Runs only on the loop thread.  First real response wins; a
            # lost-request notification (``None`` with the request's id
            # box) only settles failure once every submitted incarnation
            # is lost and no hedge can still answer.  ``box=None`` is
            # the watchdog / give-up path: settle failure now.
            if state["done"]:
                return
            if response is None and box:
                state["lost"].add(box[0])
                if state["hedge_pending"] or len(state["lost"]) < len(
                    state["rids"]
                ):
                    return
            state["done"] = True
            for timer in (state["hedge_timer"], state["watchdog"]):
                if timer is not None:
                    timer.cancel()
            for sent in state["rids"]:
                runtime.abandon(sent)
            if response is None or not response.get("ok"):
                breaker.record_failure()
                settle(None)
                return
            breaker.record_success()
            outcomes = []
            for item in marshal.loads(response["items"]):
                outcome = ShardOutcome(shard, attempts=1)
                if item.get("ok"):
                    outcome.rows = item["rows"]
                else:
                    outcome.kind = item.get("error_kind", "internal")
                    outcome.error = item.get("error")
                outcomes.append(outcome)
            settle(outcomes)

        def submit(replica: int) -> bool:
            # ``box`` carries the request id into the callback; it is
            # filled before any loop callback can run (``finish`` only
            # executes on the loop thread, after this flush returns).
            box: list = []

            def on_complete(response: Optional[dict]) -> None:
                try:
                    self._loop.call_soon_threadsafe(finish, response, box)
                except RuntimeError:  # loop closed mid-shutdown
                    pass

            try:
                rid = runtime.submit_batch(
                    shard,
                    sqls,
                    replica=replica,
                    timeout=timeout,
                    max_rows=engine.config.max_rows,
                    on_complete=on_complete,
                )
            except Exception:
                return False
            box.append(rid)
            state["rids"].append(rid)
            return True

        if not submit(primary):
            breaker.record_failure()
            settle(None)
            return

        hedge_delay = engine.config.hedge_delay
        if hedge and hedge_delay is not None and runtime.replicas > 1:
            state["hedge_pending"] = True

            def fire_hedge() -> None:
                state["hedge_pending"] = False
                if state["done"]:
                    return
                engine._count("hedges")
                submitted = submit((primary + 1) % runtime.replicas)
                if not submitted and len(state["lost"]) >= len(
                    state["rids"]
                ):
                    finish(None, None)

            state["hedge_timer"] = self._loop.call_later(
                hedge_delay, fire_hedge
            )
        if timeout is not None:
            state["watchdog"] = self._loop.call_later(
                timeout + _BATCH_GRACE, finish, None, None
            )

    # -- the per-shard ladder, async ---------------------------------------------

    async def _query_shard(
        self,
        shard: int,
        sql: str,
        expiry: Optional[float],
        hedge: bool = True,
    ) -> ShardOutcome:
        """Futures-driven twin of :meth:`ShardedEngine._query_shard` —
        identical rung order, budgets and breaker bookkeeping."""
        engine = self._engine
        outcome = ShardOutcome(shard)
        breaker = engine._breakers[shard]
        if not breaker.allow():
            engine._count("breaker_short_circuits")
            outcome.kind = "breaker-open"
            outcome.error = (
                f"shard {shard} circuit breaker is {breaker.state}"
            )
            return outcome
        attempts = max(1, engine.config.shard_retries + 1)
        for attempt in range(attempts):
            if attempt:
                engine._count("retries")
            outcome.attempts = attempt + 1
            remaining = (
                expiry - time.monotonic() if expiry is not None else None
            )
            if remaining is not None and remaining <= 0:
                outcome.kind = "deadline"
                outcome.error = f"shard {shard}: query deadline exhausted"
                break
            slice_budget = (
                remaining / (attempts - attempt)
                if remaining is not None
                else None
            )
            primary = attempt % engine.runtime.replicas
            response, kind = await self._attempt(
                shard, sql, primary, slice_budget, outcome, hedge=hedge
            )
            if response is not None and response.get("ok"):
                breaker.record_success()
                outcome.rows = response["rows"]
                outcome.kind = None
                outcome.error = None
                return outcome
            breaker.record_failure()
            if response is not None:
                outcome.kind = response.get("error_kind", "internal")
                outcome.error = response.get("error")
            else:
                outcome.kind = kind
                outcome.error = (
                    f"shard {shard}: worker crashed mid-request"
                    if kind == "worker-crashed"
                    else f"shard {shard}: no response within budget"
                )
        return outcome

    async def _attempt(
        self,
        shard: int,
        sql: str,
        primary: int,
        budget: Optional[float],
        outcome: ShardOutcome,
        hedge: bool = True,
    ) -> tuple[Optional[dict], str]:
        """One attempt: submit to ``primary``, hedge to the next replica
        after ``hedge_delay`` of silence, first response wins — without
        a waiting thread: worker completions (and crash/fence
        notifications) resolve loop futures via ``on_complete``, so the
        only timed wake-ups are the hedge point and the budget."""
        engine = self._engine
        runtime = engine.runtime
        start = time.monotonic()
        sent: list[int] = []
        waiters: list[asyncio.Future] = []

        def submit(replica: int) -> None:
            left = (
                budget - (time.monotonic() - start)
                if budget is not None
                else None
            )
            waiter = self._loop.create_future()

            def on_complete(response: Optional[dict]) -> None:
                try:
                    self._loop.call_soon_threadsafe(
                        _resolve, waiter, response
                    )
                except RuntimeError:  # loop closed mid-shutdown
                    pass

            sent.append(
                runtime.submit(
                    shard,
                    sql,
                    replica=replica,
                    timeout=left,
                    max_rows=engine.config.max_rows,
                    on_complete=on_complete,
                )
            )
            waiters.append(waiter)

        hedge_at = (
            engine.config.hedge_delay
            if hedge
            and engine.config.hedge_delay is not None
            and runtime.replicas > 1
            else None
        )
        try:
            submit(primary)
        except Exception:
            return None, "worker-crashed"
        try:
            while True:
                elapsed = time.monotonic() - start
                if budget is not None and elapsed >= budget:
                    return None, "deadline"
                # Only wait on still-unresolved waiters: a lost one is
                # permanently done, and re-waiting on it would turn
                # ``asyncio.wait`` into a busy loop.
                live = [waiter for waiter in waiters if not waiter.done()]
                if not live:
                    # Every incarnation we asked is dead or fenced off;
                    # no answer can ever arrive — fail over now.
                    return None, "worker-crashed"
                wait: Optional[float] = None
                if budget is not None:
                    wait = budget - elapsed
                if hedge_at is not None:
                    hedge_wait = max(hedge_at - elapsed, 0.001)
                    wait = (
                        hedge_wait if wait is None else min(wait, hedge_wait)
                    )
                done, _ = await asyncio.wait(
                    live,
                    timeout=wait,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for waiter in done:
                    response = waiter.result()
                    if response is not None:
                        return response, "answered"
                elapsed = time.monotonic() - start
                if hedge_at is not None and elapsed >= hedge_at:
                    hedge_at = None
                    outcome.hedged = True
                    engine._count("hedges")
                    try:
                        submit((primary + 1) % runtime.replicas)
                    except Exception:  # noqa: S110 - hedge is optional
                        pass
        finally:
            for request_id in sent:
                runtime.abandon(request_id)
