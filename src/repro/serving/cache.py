"""The result-cache tier of the engines' two-tier cache.

Tier one (per engine, unchanged) caches *translations* — they depend
only on the schema, which is static for a store's lifetime.  Tier two,
this module, caches whole :class:`~repro.core.engine.QueryResult`
objects keyed by ``(xpath, store generation)``.  The store bumps its
generation counter on every mutation (``load`` / ``bulk_load`` /
``append_subtree`` / ``delete_*`` / ``update_*``), so a stale entry's
key can simply never be asked for again — hits after a mutation miss by
construction, and LRU eviction reclaims the dead generations.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, namedtuple
from typing import Any, Hashable

#: Hit/miss statistics, shaped like ``functools.lru_cache``'s.
CacheInfo = namedtuple("CacheInfo", ["hits", "misses", "maxsize", "currsize"])


class ResultCache:
    """A bounded, thread-safe LRU mapping of query keys to results.

    Cached values are shared between callers — treat them as immutable
    (the engines' :class:`QueryResult` rows are frozen dataclasses).
    """

    def __init__(self, maxsize: int = 128):
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0

    def get(self, key: Hashable) -> Any | None:
        """The cached value for ``key``, or ``None`` on a miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self._misses += 1
                return None
            self._hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert (or refresh) ``key``, evicting the LRU entry on
        overflow."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def cache_info(self) -> CacheInfo:
        """Hit/miss counters and occupancy."""
        with self._lock:
            return CacheInfo(
                self._hits, self._misses, self.maxsize, len(self._entries)
            )

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
