"""Concurrent read-serving layer.

The paper's thesis is that PPF translation lets the relational backend
do the heavy lifting; this package lets the backend actually exploit
that under concurrency:

* :class:`ConnectionPool` — N pooled read-only :class:`~repro.storage.
  database.Database` connections over the WAL file a store writes to,
  checked out per query (each registers ``regexp_like`` and keeps the
  guard/retry machinery of the resilience layer),
* :class:`ResultCache` — the bounded second cache tier of the engines:
  full :class:`~repro.core.engine.QueryResult` objects keyed by
  ``(xpath, store generation)``, so a hit never touches SQLite and a
  mutation can never serve a stale answer,
* :func:`bulk_pragmas` / :func:`iter_chunks` — the pragma scope and
  batching primitives behind ``ShreddedStore.bulk_load`` /
  ``EdgeStore.bulk_load``.
"""

from repro.serving.bulk import bulk_pragmas, iter_chunks
from repro.serving.cache import CacheInfo, ResultCache
from repro.serving.pool import ConnectionPool

__all__ = [
    "CacheInfo",
    "ConnectionPool",
    "ResultCache",
    "bulk_pragmas",
    "iter_chunks",
]
