"""Concurrent read-serving layer.

The paper's thesis is that PPF translation lets the relational backend
do the heavy lifting; this package lets the backend actually exploit
that under concurrency:

* :class:`ConnectionPool` — N pooled read-only :class:`~repro.storage.
  database.Database` connections over the WAL file a store writes to,
  checked out per query (each registers ``regexp_like`` and keeps the
  guard/retry machinery of the resilience layer),
* :class:`ResultCache` — the bounded second cache tier of the engines:
  full :class:`~repro.core.engine.QueryResult` objects keyed by
  ``(xpath, store generation)``, so a hit never touches SQLite and a
  mutation can never serve a stale answer,
* :func:`bulk_pragmas` / :func:`iter_chunks` — the pragma scope and
  batching primitives behind ``ShreddedStore.bulk_load`` /
  ``EdgeStore.bulk_load``,
* the **sharded multi-process tier** (imported lazily — it builds on
  :mod:`repro.core`, which itself imports this package):
  :class:`ShardedStore` places documents across N SQLite shard files,
  :class:`ShardRuntime` supervises the forked worker fleet serving
  them, and :class:`ShardedEngine` scatter-gathers queries over the
  fleet with deadlines, hedging, circuit breaking and a
  graceful-degradation ladder,
* the **asyncio front door** (:class:`AsyncShardedEngine`) — batched
  admission over the same fleet for event-loop clients: thousands of
  in-flight queries per process, one coalesced ``submit_batch`` per
  shard per tick, the degradation ladder driven by futures instead of
  blocked threads.
"""

from repro.serving.bulk import bulk_pragmas, iter_chunks
from repro.serving.cache import CacheInfo, ResultCache
from repro.serving.pool import ConnectionPool

#: name -> submodule holding it (resolved on first attribute access).
_LAZY = {
    "DocEntry": "shards",
    "ShardedStore": "shards",
    "shard_of": "shards",
    "CircuitBreaker": "supervisor",
    "ShardRuntime": "supervisor",
    "WorkerConfig": "supervisor",
    "WorkerHandle": "supervisor",
    "ServingConfig": "scatter",
    "ShardOutcome": "scatter",
    "ShardedEngine": "scatter",
    "AsyncShardedEngine": "frontdoor",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is not None:
        import importlib

        module = importlib.import_module(f"repro.serving.{module_name}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "AsyncShardedEngine",
    "CacheInfo",
    "CircuitBreaker",
    "ConnectionPool",
    "DocEntry",
    "ResultCache",
    "ServingConfig",
    "ShardOutcome",
    "ShardRuntime",
    "ShardedEngine",
    "ShardedStore",
    "WorkerConfig",
    "WorkerHandle",
    "bulk_pragmas",
    "iter_chunks",
    "shard_of",
]
