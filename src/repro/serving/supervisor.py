"""Supervised shard-worker processes: the muscle behind sharded serving.

Thread fan-out measurably *degrades* this workload (BENCH_PR2/PR4), so
queries scatter over **processes**: each shard of a :class:`~repro.
serving.shards.ShardedStore` is served by one or more forked worker
processes, each owning its own read-only :class:`~repro.serving.pool.
ConnectionPool` over the shard file.  SQLite steps with the GIL
released, but separate processes also get separate page caches and true
CPU parallelism for the Python-side row handling.

The robustness machinery lives here:

* **supervision** — a :class:`ShardRuntime` background thread health-
  checks every worker: a dead process (crash, OOM-kill) is respawned
  immediately; a *hung* process (heartbeats stale) is terminated and
  respawned.  Respawn events land in a journal the chaos suite asserts
  on.
* **generation fencing** — every worker incarnation carries a
  generation number; responses echo it, and the parent drops responses
  whose generation does not match the incarnation it sent the request
  to.  A late reply from a pre-crash worker (or one serving a stale
  store) can therefore never be mistaken for a fresh answer.
* **circuit breaking** — :class:`CircuitBreaker` implements the
  classic closed → open → half-open ladder per shard, so a persistently
  failing shard is failed fast instead of eating the query deadline on
  every request.

Workers are deliberately dumb: they receive already-translated SQL
(shard files share one schema, and the generated statements filter
`Paths` by string, never by shard-local ids), run it under the
resilience guards, and ship raw rows back.  All policy — deadlines,
hedging, retries, degradation — stays in the parent
(:mod:`repro.serving.scatter`).
"""

from __future__ import annotations

import marshal
import multiprocessing
import os
import queue as queue_mod
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.errors import (
    QueryLimitError,
    QueryTimeoutError,
    RetryExhaustedError,
    ShardError,
    StorageError,
)
from repro.resilience.faults import WorkerFaultPlan
from repro.resilience.policy import ResiliencePolicy

#: Seconds between heartbeat stamps inside a healthy worker.
HEARTBEAT_INTERVAL = 0.05

#: Default seconds between supervisor health sweeps.
DEFAULT_HEALTH_INTERVAL = 0.25

#: Default staleness threshold before a worker counts as hung.
DEFAULT_HEARTBEAT_TIMEOUT = 2.0

#: Exit code workers use for scripted kill faults (mirrors SIGKILL).
_KILL_EXIT_CODE = 137


# ---------------------------------------------------------------------------
# worker process
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker process needs, picklable for any
    multiprocessing start method."""

    shard: int
    replica: int
    generation: int
    shard_path: str
    pool_size: int = 2
    policy: ResiliencePolicy | None = None
    fault_plan: WorkerFaultPlan | None = None
    heartbeat_interval: float = HEARTBEAT_INTERVAL


def _classify_error(exc: Exception) -> str:
    if isinstance(exc, QueryTimeoutError):
        return "timeout"
    if isinstance(exc, QueryLimitError):
        return "limit"
    if isinstance(exc, RetryExhaustedError):
        return "retry-exhausted"
    if isinstance(exc, StorageError):
        return "storage"
    return "internal"


def worker_main(
    config: WorkerConfig,
    requests: "multiprocessing.queues.Queue[dict]",
    responses: "multiprocessing.queues.Queue[dict]",
    heartbeat: Any,
) -> None:
    """Entry point of one shard worker process.

    Serves ``query``/``ping`` requests from ``requests`` until a
    ``stop`` message arrives, stamping ``heartbeat`` from a side thread
    so long-running queries never look like a hang.  Scripted process
    faults (kill / hang / slow) apply per request.
    """
    from repro.serving.pool import ConnectionPool

    frozen = threading.Event()
    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.is_set() and not frozen.is_set():
            heartbeat.value = time.time()
            stop_beating.wait(config.heartbeat_interval)

    beater = threading.Thread(target=beat, daemon=True)
    beater.start()

    draw = (
        config.fault_plan.for_worker(
            config.shard, config.replica, config.generation
        )
        if config.fault_plan is not None
        else None
    )
    pool: ConnectionPool | None = None
    pool_error: str | None = None
    try:
        pool = ConnectionPool(
            config.shard_path, size=config.pool_size, policy=config.policy
        )
    except Exception as exc:  # pragma: no cover - open failures are rare
        pool_error = str(exc)

    def respond(payload: dict) -> None:
        payload.setdefault("shard", config.shard)
        payload.setdefault("replica", config.replica)
        payload["gen"] = config.generation
        responses.put(payload)

    def run_query(message: dict, fault: Any) -> None:
        # A "slow" fault delays the affected request (holding its
        # executor slot), not the whole worker.
        if fault is not None and fault.kind == "slow":
            time.sleep(fault.seconds)
        if pool is None:
            respond(
                {
                    "id": message["id"],
                    "ok": False,
                    "error_kind": "storage",
                    "error": f"shard pool unavailable: {pool_error}",
                }
            )
            return
        try:
            with pool.acquire() as db:
                rows = db.query(
                    message["sql"],
                    timeout=message.get("timeout"),
                    max_rows=message.get("max_rows"),
                )
            respond({"id": message["id"], "ok": True, "rows": rows})
        except Exception as exc:
            respond(
                {
                    "id": message["id"],
                    "ok": False,
                    "error_kind": _classify_error(exc),
                    "error": str(exc)[:500],
                    "attempts": getattr(exc, "attempts", None),
                }
            )

    def run_batch(message: dict, fault: Any) -> None:
        # Pipelined statements: one request/response round-trip carries
        # a whole batch, amortizing queue + pickle overhead that would
        # otherwise be paid per query.  Item failures are reported per
        # item; the batch response itself is always "ok" once the pool
        # is usable.
        if fault is not None and fault.kind == "slow":
            time.sleep(fault.seconds)
        if pool is None:
            respond(
                {
                    "id": message["id"],
                    "ok": False,
                    "error_kind": "storage",
                    "error": f"shard pool unavailable: {pool_error}",
                }
            )
            return
        items = []
        with pool.acquire() as db:
            for sql in message["sqls"]:
                try:
                    rows = db.query(
                        sql,
                        timeout=message.get("timeout"),
                        max_rows=message.get("max_rows"),
                    )
                    items.append({"ok": True, "rows": rows})
                except Exception as exc:
                    items.append(
                        {
                            "ok": False,
                            "error_kind": _classify_error(exc),
                            "error": str(exc)[:500],
                        }
                    )
        # SQLite rows hold only marshal-able scalars, and marshal of a
        # big nested list beats the queue deep-pickling 10k+ tuples —
        # the queue then ships one flat bytes payload.
        respond(
            {"id": message["id"], "ok": True, "items": marshal.dumps(items)}
        )

    # Queries run on as many threads as the pool has connections:
    # SQLite steps with the GIL released, so a worker genuinely
    # overlaps requests instead of serving a batch one at a time.
    executor = ThreadPoolExecutor(
        max_workers=max(1, config.pool_size),
        thread_name_prefix=f"shard{config.shard}r{config.replica}",
    )
    try:
        while True:
            try:
                message = requests.get(timeout=0.2)
            except queue_mod.Empty:
                continue
            op = message.get("op")
            if op == "stop":
                break
            if op == "ping":
                respond({"id": message["id"], "ok": True, "pong": True})
                continue
            if op not in ("query", "batch"):
                continue
            fault = draw.draw() if draw is not None else None
            if fault is not None:
                if fault.kind == "kill":
                    os._exit(_KILL_EXIT_CODE)
                if fault.kind == "hang":
                    # A frozen process stops heartbeating entirely; the
                    # supervisor terminates it well before the cap.
                    frozen.set()
                    time.sleep(fault.seconds if fault.seconds > 0 else 3600.0)
                    continue
            executor.submit(
                run_batch if op == "batch" else run_query, message, fault
            )
    finally:
        stop_beating.set()
        executor.shutdown(wait=False)
        if pool is not None:
            pool.close()


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Closed → open → half-open breaker guarding one shard.

    *Closed* passes requests through and counts consecutive failures;
    ``failure_threshold`` of them trip the breaker *open*, which fails
    fast for ``cooldown`` seconds.  After the cooldown, the breaker is
    *half-open*: exactly one probe request is let through — success
    closes the breaker, failure re-opens it for another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 1.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._failures = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half-open"``."""
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.cooldown:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        """May a request proceed right now?  In the half-open state,
        only the first caller gets a probe slot until its outcome is
        recorded."""
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                return True
            if state == "open":
                return False
            if self._probing:
                return False
            self._probing = True
            return True

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            if self._opened_at is not None:
                # Failed probe (or late failure): restart the cooldown.
                self._opened_at = self._clock()
                self._probing = False
                return
            self._failures += 1
            if self._failures >= self.failure_threshold:
                self._opened_at = self._clock()
                self._probing = False


# ---------------------------------------------------------------------------
# runtime
# ---------------------------------------------------------------------------


@dataclass
class WorkerHandle:
    """Parent-side view of one worker incarnation."""

    shard: int
    replica: int
    generation: int
    process: Any
    requests: Any
    heartbeat: Any
    started_at: float = field(default_factory=time.time)


class _Pending:
    """One in-flight request awaiting its response."""

    __slots__ = (
        "callback", "event", "expected_gen", "shard", "replica", "response",
    )

    def __init__(
        self, event: threading.Event, shard: int, replica: int,
        expected_gen: int,
        callback: "Optional[Callable[[Optional[dict]], None]]" = None,
    ):
        self.event = event
        self.shard = shard
        self.replica = replica
        self.expected_gen = expected_gen
        self.response: dict | None = None
        #: Completion hook fired (from the dispatcher/supervisor thread)
        #: with the response dict, or ``None`` when the request became
        #: unanswerable (worker respawned / runtime closed).  This is
        #: what bridges completions into an asyncio event loop without a
        #: waiting thread per request (``loop.call_soon_threadsafe``).
        self.callback = callback


class ShardRuntime:
    """The supervised worker fleet over one sharded store.

    ``replicas`` workers serve each shard (two by default, so hedged
    duplicate requests have somewhere to go).  A supervisor thread
    respawns dead workers and terminates hung ones; a dispatcher thread
    routes responses — dropping any whose worker generation is stale —
    to the threads waiting on them.

    The runtime is transport only: :meth:`submit` / :meth:`wait` /
    :meth:`wait_any` move SQL out and raw rows back.  Deadlines,
    hedging, retries and degradation live in
    :class:`~repro.serving.scatter.ShardedEngine`.
    """

    def __init__(
        self,
        shard_paths: list[str],
        replicas: int = 2,
        pool_size: int = 2,
        policy: ResiliencePolicy | None = None,
        health_interval: float = DEFAULT_HEALTH_INTERVAL,
        heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
        fault_plan: WorkerFaultPlan | None = None,
        start_method: str | None = None,
    ):
        if not shard_paths:
            raise ShardError("a shard runtime needs at least one shard")
        if replicas < 1:
            raise ShardError(f"replicas must be >= 1, got {replicas}")
        self.shard_paths = list(shard_paths)
        self.replicas = replicas
        self.pool_size = pool_size
        self.policy = policy
        self.health_interval = health_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.fault_plan = fault_plan
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = multiprocessing.get_context(start_method)
        self._responses = self._ctx.Queue()
        self._workers: dict[tuple[int, int], WorkerHandle] = {}
        self._lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        self._next_request_id = 1
        self._rr: dict[int, int] = {}
        self._stop = threading.Event()
        self._started = False
        #: Supervision journal: spawn/respawn/heartbeat-kill events, in
        #: order.  The chaos suite uploads this as its run artifact.
        self.events: list[dict] = []

    # -- lifecycle ---------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.shard_paths)

    def start(self) -> "ShardRuntime":
        """Spawn every worker and the dispatcher/supervisor threads."""
        if self._started:
            return self
        self._started = True
        for shard in range(self.shard_count):
            for replica in range(self.replicas):
                self._spawn(shard, replica, generation=0, reason="start")
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="shard-dispatch"
        )
        self._dispatcher.start()
        self._supervisor = threading.Thread(
            target=self._supervise_loop, daemon=True, name="shard-supervise"
        )
        self._supervisor.start()
        return self

    def close(self) -> None:
        """Stop supervision, shut every worker down, drain state."""
        if not self._started or self._stop.is_set():
            self._stop.set()
            return
        self._stop.set()
        self._supervisor.join(timeout=2.0)
        with self._lock:
            handles = list(self._workers.values())
        for handle in handles:
            try:
                handle.requests.put_nowait({"op": "stop"})
            except Exception:  # pragma: no cover - queue torn down
                pass
        deadline = time.monotonic() + 2.0
        for handle in handles:
            handle.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.terminate()
                handle.process.join(timeout=1.0)
        self._dispatcher.join(timeout=2.0)
        lost_callbacks = []
        with self._lock:
            for pending in self._pending.values():
                pending.event.set()
                if pending.callback is not None and pending.response is None:
                    lost_callbacks.append(pending.callback)
            self._pending.clear()
            self._workers.clear()
        for callback in lost_callbacks:
            try:
                callback(None)
            except Exception:  # pragma: no cover - defensive
                pass

    def __enter__(self) -> "ShardRuntime":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- spawning / supervision --------------------------------------------------

    def _spawn(
        self, shard: int, replica: int, generation: int, reason: str
    ) -> WorkerHandle:
        config = WorkerConfig(
            shard=shard,
            replica=replica,
            generation=generation,
            shard_path=self.shard_paths[shard],
            pool_size=self.pool_size,
            policy=self.policy,
            fault_plan=self.fault_plan,
        )
        requests = self._ctx.Queue()
        heartbeat = self._ctx.Value("d", time.time(), lock=False)
        process = self._ctx.Process(
            target=worker_main,
            args=(config, requests, self._responses, heartbeat),
            daemon=True,
            name=f"shard-{shard}-r{replica}-g{generation}",
        )
        process.start()
        handle = WorkerHandle(
            shard=shard,
            replica=replica,
            generation=generation,
            process=process,
            requests=requests,
            heartbeat=heartbeat,
        )
        with self._lock:
            self._workers[(shard, replica)] = handle
            self.events.append(
                {
                    "time": time.time(),
                    "event": "spawn" if generation == 0 else "respawn",
                    "reason": reason,
                    "shard": shard,
                    "replica": replica,
                    "generation": generation,
                }
            )
        return handle

    def _supervise_loop(self) -> None:
        while not self._stop.wait(self.health_interval):
            for key in list(self._workers):
                with self._lock:
                    handle = self._workers.get(key)
                if handle is None:  # pragma: no cover - close() race
                    continue
                if not handle.process.is_alive():
                    self._respawn(handle, reason="crash")
                    continue
                stale = time.time() - handle.heartbeat.value
                if stale > self.heartbeat_timeout:
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                    self._respawn(handle, reason="hung")

    def _respawn(self, handle: WorkerHandle, reason: str) -> None:
        """Replace a dead/hung worker with a fresh incarnation one
        generation up — in-flight requests to the old incarnation are
        fenced off by the generation check in the dispatcher."""
        self._spawn(
            handle.shard,
            handle.replica,
            generation=handle.generation + 1,
            reason=reason,
        )
        # Wake waiters bound to the dead incarnation: their
        # ``request_lost`` check sees the generation bump and fails
        # over immediately instead of discovering it by polling.
        lost_callbacks = []
        with self._lock:
            for pending in self._pending.values():
                if (
                    pending.shard == handle.shard
                    and pending.replica == handle.replica
                    and pending.expected_gen <= handle.generation
                    and pending.response is None
                ):
                    pending.event.set()
                    if pending.callback is not None:
                        lost_callbacks.append(pending.callback)
        for callback in lost_callbacks:
            try:
                callback(None)
            except Exception:  # pragma: no cover - defensive
                pass

    def worker(self, shard: int, replica: int) -> WorkerHandle:
        """The current incarnation serving ``(shard, replica)``."""
        with self._lock:
            try:
                return self._workers[(shard, replica)]
            except KeyError:
                raise ShardError(
                    f"no worker for shard {shard} replica {replica}",
                    shard=shard,
                ) from None

    def respawn_count(self) -> int:
        """Number of respawn events so far (crash + hang recoveries)."""
        with self._lock:
            return sum(
                1 for event in self.events if event["event"] == "respawn"
            )

    # -- request plumbing --------------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not (self._stop.is_set() and not self._pending):
            try:
                response = self._responses.get(timeout=0.1)
            except queue_mod.Empty:
                if self._stop.is_set():
                    break
                continue
            request_id = response.get("id")
            callback = None
            with self._lock:
                pending = self._pending.get(request_id)
                if pending is None:
                    continue  # already abandoned (hedge lost the race)
                if response.get("gen") != pending.expected_gen:
                    # Generation fence: a reply from a stale worker
                    # incarnation must never satisfy a fresh request.
                    continue
                pending.response = response
                pending.event.set()
                callback = pending.callback
            if callback is not None:
                # Outside the lock: the hook typically just schedules a
                # loop.call_soon_threadsafe, but it is caller code.
                try:
                    callback(response)
                except Exception:  # pragma: no cover - defensive
                    pass

    def submit(
        self,
        shard: int,
        sql: str,
        *,
        replica: int | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        event: threading.Event | None = None,
        on_complete: Callable[[Optional[dict]], None] | None = None,
    ) -> int:
        """Send one SQL request to a worker of ``shard``; returns the
        request id to :meth:`wait` on.  ``replica`` pins a specific
        worker (hedges do); by default replicas rotate round-robin.
        ``event`` lets several requests share a wake-up event for
        first-response-wins waits.  ``on_complete`` is fired once from a
        runtime thread with the response dict — or ``None`` when the
        request became unanswerable — letting event-loop callers bridge
        completions to futures without a waiting thread per request."""
        if replica is None:
            with self._lock:
                replica = self._rr.get(shard, 0) % self.replicas
                self._rr[shard] = replica + 1
        handle = self.worker(shard, replica)
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._pending[request_id] = _Pending(
                event if event is not None else threading.Event(),
                shard,
                replica,
                handle.generation,
                callback=on_complete,
            )
        message = {
            "op": "query",
            "id": request_id,
            "sql": sql,
            "timeout": timeout,
            "max_rows": max_rows,
        }
        try:
            handle.requests.put_nowait(message)
        except Exception as exc:
            self.abandon(request_id)
            raise ShardError(
                f"could not enqueue request to shard {shard} replica "
                f"{replica}: {exc}",
                shard=shard,
            ) from exc
        return request_id

    def submit_batch(
        self,
        shard: int,
        sqls: list[str],
        *,
        replica: int | None = None,
        timeout: float | None = None,
        max_rows: int | None = None,
        event: threading.Event | None = None,
        on_complete: Callable[[Optional[dict]], None] | None = None,
    ) -> int:
        """Send a pipelined batch of statements to one worker in a
        single request/response round-trip.  The response carries one
        ``items`` entry per statement (``ok`` + rows, or a per-item
        error); queue and pickle overhead is paid once per batch
        instead of once per statement.  ``on_complete`` follows the
        :meth:`submit` contract."""
        if replica is None:
            with self._lock:
                replica = self._rr.get(shard, 0) % self.replicas
                self._rr[shard] = replica + 1
        handle = self.worker(shard, replica)
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._pending[request_id] = _Pending(
                event if event is not None else threading.Event(),
                shard,
                replica,
                handle.generation,
                callback=on_complete,
            )
        message = {
            "op": "batch",
            "id": request_id,
            "sqls": list(sqls),
            "timeout": timeout,
            "max_rows": max_rows,
        }
        try:
            handle.requests.put_nowait(message)
        except Exception as exc:
            self.abandon(request_id)
            raise ShardError(
                f"could not enqueue batch to shard {shard} replica "
                f"{replica}: {exc}",
                shard=shard,
            ) from exc
        return request_id

    def ping(self, shard: int, replica: int, timeout: float = 1.0) -> bool:
        """Round-trip health probe of one worker."""
        handle = self.worker(shard, replica)
        with self._lock:
            request_id = self._next_request_id
            self._next_request_id += 1
            self._pending[request_id] = _Pending(
                threading.Event(), shard, replica, handle.generation
            )
        try:
            handle.requests.put_nowait({"op": "ping", "id": request_id})
        except Exception:
            self.abandon(request_id)
            return False
        response = self.wait(request_id, timeout)
        return bool(response and response.get("ok"))

    def wait(self, request_id: int, timeout: float) -> Optional[dict]:
        """Block for the response to ``request_id``; ``None`` when it
        does not arrive in time (the request is abandoned)."""
        with self._lock:
            pending = self._pending.get(request_id)
        if pending is None:
            return None
        pending.event.wait(timeout)
        with self._lock:
            pending = self._pending.pop(request_id, None)
        return pending.response if pending is not None else None

    def wait_any(
        self, request_ids: list[int], event: threading.Event, timeout: float
    ) -> tuple[Optional[int], Optional[dict]]:
        """First-response-wins wait over requests sharing ``event``.

        Returns ``(request_id, response)`` of the first arrival, or
        ``(None, None)`` on timeout.  The *other* requests stay pending;
        abandon them (or keep waiting) as the caller sees fit.
        """
        deadline = time.monotonic() + timeout
        while True:
            with self._lock:
                for request_id in request_ids:
                    pending = self._pending.get(request_id)
                    if pending is not None and pending.response is not None:
                        self._pending.pop(request_id, None)
                        return request_id, pending.response
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None, None
            event.wait(remaining)
            event.clear()

    def abandon(self, request_id: int) -> None:
        """Forget an in-flight request (lost hedge, expired deadline);
        its eventual response — if any — is dropped by the
        dispatcher."""
        with self._lock:
            self._pending.pop(request_id, None)

    def request_lost(self, request_id: int) -> bool:
        """``True`` when ``request_id`` can no longer be answered: the
        worker incarnation it was sent to crashed or was respawned
        (generation fence) before responding.  Lets callers fail over
        immediately instead of waiting out their deadline budget."""
        with self._lock:
            pending = self._pending.get(request_id)
            if pending is None or pending.response is not None:
                return False
            handle = self._workers.get((pending.shard, pending.replica))
        if handle is None:
            return True
        return (
            handle.generation != pending.expected_gen
            or not handle.process.is_alive()
        )
