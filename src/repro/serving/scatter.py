"""Scatter-gather query execution over a sharded store.

:class:`ShardedEngine` is the sharded counterpart of
:class:`~repro.core.engine.PPFEngine`: translate once (all shards share
one schema, and the generated SQL filters `Paths` by string, never by
shard-local ids), scatter the statement to every shard's worker via the
:class:`~repro.serving.supervisor.ShardRuntime`, remap shard-local row
ids to global ids through the store's document registry, and merge in
Dewey document order — bit-identical to single-store execution.

The failure policy is a **graceful-degradation ladder**, applied per
shard and rung by rung:

1. **hedge** — when a shard has not answered within ``hedge_delay``,
   the identical request is duplicated to a second replica worker and
   the first response wins (stragglers lose, tail latency drops);
2. **retry** — a failed or crashed attempt is retried on the next
   replica, within the remaining deadline budget;
3. **partial results** — shards still failing after their retries are
   *dropped*, not guessed: the merged result reports
   ``complete=False`` with the losers in ``failed_shards`` (the rows
   that are present remain correct and ordered);
4. **native fallback** — when *every* shard failed, the in-memory
   evaluator answers from the store's resident documents
   (``served_by="native"``); if it cannot vouch for the data, the query
   fails with a typed :class:`~repro.errors.ShardUnavailableError`.

No rung ever fabricates rows; a caller always gets correct-complete,
correct-partial (flagged), or a typed error — the chaos suite asserts
exactly this against the native oracle.

Backpressure sits in front of the ladder: an admission semaphore caps
in-flight queries (reject fast with
:class:`~repro.errors.AdmissionRejectedError` rather than queue without
bound), and a per-shard :class:`~repro.serving.supervisor.
CircuitBreaker` fails persistently-broken shards fast instead of
spending the deadline on them.
"""

from __future__ import annotations

import asyncio
import itertools
import marshal
import operator
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core.adapters import SchemaAwareAdapter
from repro.core.engine import (
    ExplainReport,
    QueryResult,
    ResultRow,
    SQLXPathEngine,
    _normalize_many_args,
)
from repro.core.translator import PPFTranslator, TranslationResult
from repro.errors import AdmissionRejectedError, ShardUnavailableError
from repro.resilience.faults import WorkerFaultPlan
from repro.resilience.policy import ResiliencePolicy
from repro.serving.supervisor import CircuitBreaker, ShardRuntime
from repro.sqlgen.ast import UnionStatement
from repro.xpath.ast import XPathExpr

#: Granularity of the per-shard wait loop (crash detection latency).
_WAIT_SLICE = 0.02

#: Backstop granularity of the batch wait loop.  Batch waiters are
#: woken by the dispatcher on response and by the supervisor on
#: respawn, so this poll only catches a worker that died *between*
#: health checks — it can be coarse, which keeps the parent asleep
#: (and off the CPU) while workers run the batch.
_BATCH_WAIT_SLICE = 0.25


@dataclass(frozen=True)
class ServingConfig:
    """Tunables of the sharded serving ladder."""

    #: Default per-query wall-clock deadline in seconds, budgeted over a
    #: shard's attempts (``None`` = no deadline).
    deadline: Optional[float] = 5.0
    #: Seconds a shard may stay silent before a hedged duplicate request
    #: goes to a second replica (``None`` disables hedging).
    hedge_delay: Optional[float] = 0.05
    #: Cost-model gate on hedging: a query whose estimated result is
    #: below this many rows skips hedged duplicates (a cheap query's
    #: tail latency is dominated by the duplicate's own overhead, not
    #: by stragglers).  Only consulted when the store has collected
    #: statistics; estimate-less queries hedge as before.
    hedge_min_rows: float = 16.0
    #: Extra attempts per shard after the first failed/crashed one.
    shard_retries: int = 1
    #: Maximum queries in flight; the admission queue rejects beyond it.
    max_inflight: int = 8
    #: Seconds :meth:`ShardedEngine.execute` waits for an admission slot
    #: before raising :class:`AdmissionRejectedError`.  ``None`` waits
    #: without limit — on the async front door this is the *awaitable
    #: backpressure* mode: submitted queries park on the admission
    #: semaphore (a pending future each, not a thread each) until a
    #: slot frees.
    admission_timeout: Optional[float] = 0.5
    #: Consecutive per-shard failures that trip the shard's breaker.
    breaker_threshold: int = 3
    #: Seconds a tripped breaker stays open before half-open probing.
    breaker_cooldown: float = 1.0
    #: Per-request row cap forwarded to the workers (``None`` = none).
    max_rows: Optional[int] = None
    #: Allow the final native-evaluator rung when every shard failed.
    fallback: bool = True
    #: Entries in the generation-keyed result cache (``None`` disables).
    result_cache_size: Optional[int] = 128


@dataclass
class ShardOutcome:
    """What one shard contributed to one query."""

    shard: int
    rows: Optional[list] = None
    #: Failure classification (``None`` on success): ``"breaker-open"``,
    #: ``"deadline"``, ``"worker-crashed"``, or a worker-reported error
    #: kind (``"timeout"``, ``"limit"``, ``"storage"``, ...).
    kind: Optional[str] = None
    error: Optional[str] = None
    attempts: int = 0
    hedged: bool = False

    @property
    def ok(self) -> bool:
        return self.rows is not None


class ShardedEngine:
    """Scatter-gather XPath execution over a :class:`~repro.serving.
    shards.ShardedStore` served by a :class:`ShardRuntime` worker fleet.

    Construct directly from an already-running runtime, or use
    :meth:`serve` to spawn (and own) one.  Thread-safe; admission
    control is the concurrency limiter.
    """

    def __init__(
        self,
        store,
        runtime: ShardRuntime,
        config: Optional[ServingConfig] = None,
        own_runtime: bool = False,
        verify_plans: bool = False,
    ):
        if runtime.shard_count != store.shard_count:
            raise ShardUnavailableError(
                f"runtime serves {runtime.shard_count} shard(s) but the "
                f"store has {store.shard_count}"
            )
        self.store = store
        self.runtime = runtime
        self.config = config if config is not None else ServingConfig()
        self._own_runtime = own_runtime
        # The planner wraps translation caching, explain() and the
        # native-fallback evaluation; its SQL-execution paths are never
        # used (a ShardedStore has no single `.db` to run them on).
        self._planner = SQLXPathEngine(
            store,
            PPFTranslator(SchemaAwareAdapter(store)),
            fallback=self.config.fallback,
            result_cache_size=self.config.result_cache_size,
            verify_plans=verify_plans,
        )
        self._admission = threading.BoundedSemaphore(self.config.max_inflight)
        self._breakers = {
            shard: CircuitBreaker(
                failure_threshold=self.config.breaker_threshold,
                cooldown=self.config.breaker_cooldown,
            )
            for shard in range(store.shard_count)
        }
        # One long-lived scatter pool instead of a ThreadPoolExecutor
        # per query: sized so every admitted query can fan out over all
        # shards at once without thread-spawn latency on the hot path.
        self._scatter = ThreadPoolExecutor(
            max_workers=max(1, self.config.max_inflight)
            * store.shard_count,
            thread_name_prefix="scatter",
        )
        self._stats_lock = threading.Lock()
        # Lazily-built async front doors, one per event loop (keyed by
        # id(loop), identity-checked: a dead loop's slot is reclaimed).
        self._frontdoors: dict[int, object] = {}
        #: Cleanup hooks run by :meth:`close` — :func:`repro.connect`
        #: registers the store it opened here.
        self._on_close: list = []
        #: Degradation counters: queries, hedges, retries, partials,
        #: fallbacks, rejections, breaker_short_circuits.
        self.stats = {
            "queries": 0,
            "hedges": 0,
            "retries": 0,
            "partials": 0,
            "fallbacks": 0,
            "rejections": 0,
            "breaker_short_circuits": 0,
        }

    # -- construction ------------------------------------------------------------

    @classmethod
    def serve(
        cls,
        store,
        config: Optional[ServingConfig] = None,
        replicas: int = 2,
        pool_size: int = 2,
        policy: Optional[ResiliencePolicy] = None,
        fault_plan: Optional[WorkerFaultPlan] = None,
        health_interval: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        verify_plans: bool = False,
    ) -> "ShardedEngine":
        """Spawn a worker fleet over ``store`` and wrap it in an engine
        that owns it (closing the engine closes the fleet)."""
        kwargs = {}
        if health_interval is not None:
            kwargs["health_interval"] = health_interval
        if heartbeat_timeout is not None:
            kwargs["heartbeat_timeout"] = heartbeat_timeout
        runtime = ShardRuntime(
            store.shard_paths,
            replicas=replicas,
            pool_size=pool_size,
            policy=policy if policy is not None else store.policy,
            fault_plan=fault_plan,
            **kwargs,
        ).start()
        return cls(
            store,
            runtime,
            config=config,
            own_runtime=True,
            verify_plans=verify_plans,
        )

    def close(self) -> None:
        """Shut down the scatter pool, the worker fleet when this
        engine owns it, and anything :func:`repro.connect` opened on
        the caller's behalf."""
        self._frontdoors.clear()
        self._scatter.shutdown(wait=False)
        if self._own_runtime:
            self.runtime.close()
        hooks, self._on_close = list(self._on_close), []
        for hook in reversed(hooks):
            hook()

    def __enter__(self) -> "ShardedEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- planning ----------------------------------------------------------------

    def translate(
        self, expression: Union[str, XPathExpr]
    ) -> TranslationResult:
        """Translate without executing (cached for string expressions;
        one translation serves every shard)."""
        return self._planner.translate(expression)

    def explain(self, expression: Union[str, XPathExpr]) -> ExplainReport:
        """The SQL that would be scattered to every shard, as an
        :class:`ExplainReport`."""
        return self._planner.explain(expression)

    # -- stats -------------------------------------------------------------------

    def _count(self, key: str, amount: int = 1) -> None:
        with self._stats_lock:
            self.stats[key] += amount

    def breaker_states(self) -> dict[int, str]:
        """Current circuit-breaker state per shard."""
        return {
            shard: breaker.state
            for shard, breaker in self._breakers.items()
        }

    # -- execution ---------------------------------------------------------------

    def execute(
        self,
        expression: Union[str, XPathExpr],
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Run ``expression`` over every shard and merge.

        ``deadline`` (seconds) overrides the config's per-query
        deadline.  See the module docstring for the degradation ladder;
        the result's :attr:`~repro.core.engine.QueryResult.complete` /
        ``failed_shards`` carry the completeness contract.

        :raises AdmissionRejectedError: no in-flight slot freed up
            within the admission timeout (backpressure).
        :raises ShardUnavailableError: every shard failed and the
            native fallback was disabled or declined.
        """
        if not self._admission.acquire(timeout=self.config.admission_timeout):
            self._count("rejections")
            raise AdmissionRejectedError(
                f"admission queue full: {self.config.max_inflight} queries "
                f"in flight and none finished within "
                f"{self.config.admission_timeout:g}s"
            )
        try:
            self._count("queries")
            return self._execute_admitted(expression, deadline)
        finally:
            self._admission.release()

    def execute_many(
        self,
        expressions,
        *args,
        deadline: Optional[float] = None,
        concurrency: Optional[int] = None,
        max_workers: Optional[int] = None,
    ) -> list[QueryResult]:
        """Run many queries, results in input order.

        The normalized batch surface shared with
        :class:`~repro.core.engine.PPFEngine`: ``deadline`` is a
        wall-clock budget for the whole call, and partial-result
        semantics ride on each result's ``complete``/``failed_shards``.
        The statements are *pipelined*: each shard worker receives one
        batch request carrying every statement, so queue and pickle
        overhead is paid per shard instead of per query.  Any statement
        a shard's batch could not answer is re-run through the normal
        per-shard hedge/retry ladder, so per-query degradation
        semantics (partial results, fallback, typed errors) are
        unchanged.  The batch occupies one admission slot.
        ``concurrency`` (and the deprecated ``max_workers`` /
        positional form) is accepted for surface compatibility —
        pipelining replaced the client-side thread fan-out."""
        deadline, _ = _normalize_many_args(
            type(self).__name__, args, deadline, concurrency, max_workers
        )
        expressions = list(expressions)
        if len(expressions) <= 1:
            return [
                self.execute(expression, deadline=deadline)
                for expression in expressions
            ]
        results: dict[int, QueryResult] = {}
        pending: list[tuple[int, TranslationResult]] = []
        keys: dict[int, object] = {}
        for index, expression in enumerate(expressions):
            translation = self.translate(expression)
            if translation.is_empty:
                results[index] = QueryResult(
                    [], translation.projection, served_by="shards"
                )
                continue
            key = self._planner._result_key(expression)
            if key is not None:
                cached = self._planner._result_cache.get(key)
                if cached is not None:
                    results[index] = cached
                    continue
            keys[index] = key
            pending.append((index, translation))
        if pending:
            if not self._admission.acquire(
                timeout=self.config.admission_timeout
            ):
                self._count("rejections")
                raise AdmissionRejectedError(
                    f"admission queue full: {self.config.max_inflight} "
                    f"queries in flight and none finished within "
                    f"{self.config.admission_timeout:g}s"
                )
            try:
                for _ in pending:
                    self._count("queries")
                self._execute_batch(pending, keys, results, deadline)
            finally:
                self._admission.release()
        return [results[index] for index in range(len(expressions))]

    def frontdoor(self) -> "object":
        """The calling event loop's :class:`~repro.serving.frontdoor.
        AsyncShardedEngine` over this engine (created on first use;
        shares this engine's planner, breakers, caches and stats).
        Must be called from a running loop."""
        # Imported lazily: frontdoor imports this module.
        from repro.serving.frontdoor import AsyncShardedEngine

        loop = asyncio.get_running_loop()
        front = self._frontdoors.get(id(loop))
        if front is None or front._loop is not loop:
            front = AsyncShardedEngine(self)
            self._frontdoors[id(loop)] = front
        return front

    async def execute_async(
        self,
        expression: Union[str, XPathExpr],
        *,
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Awaitable :meth:`execute` through the calling loop's async
        front door: batched admission, awaitable backpressure, and the
        degradation ladder driven by futures instead of a blocked
        thread.  See :class:`~repro.serving.frontdoor.
        AsyncShardedEngine`."""
        return await self.frontdoor().execute(expression, deadline=deadline)

    def _execute_batch(
        self,
        pending: list,
        keys: dict,
        results: dict,
        deadline: Optional[float],
    ) -> None:
        """Scatter one pipelined batch per shard, ladder the misses,
        merge per query into ``results`` (keyed by input position)."""
        budget = deadline if deadline is not None else self.config.deadline
        expiry = time.monotonic() + budget if budget is not None else None
        sqls = [translation.sql for _, translation in pending]
        shard_count = self.store.shard_count
        per_shard = dict(
            zip(
                range(shard_count),
                self._scatter.map(
                    lambda shard: self._batch_shard(shard, sqls, expiry),
                    range(shard_count),
                ),
            )
        )
        for position, (index, translation) in enumerate(pending):
            outcomes = []
            for shard in range(shard_count):
                batched = per_shard[shard]
                outcome = (
                    batched[position] if batched is not None else None
                )
                if outcome is None or not outcome.ok:
                    # This statement missed its batch (worker failure,
                    # breaker, per-item error): the per-shard ladder
                    # takes over with the remaining deadline.
                    outcome = self._query_shard(
                        shard,
                        translation.sql,
                        expiry,
                        hedge=self._hedge_allowed(translation),
                    )
                outcomes.append(outcome)
            failures = [o for o in outcomes if not o.ok]
            if len(failures) == shard_count:
                results[index] = self._all_shards_failed(
                    translation.expression, translation.projection, failures
                )
                continue
            result = self._merge(translation, outcomes)
            if result.complete:
                self._planner._cache_result(keys.get(index), result)
            else:
                self._count("partials")
            results[index] = result

    def _batch_shard(
        self, shard: int, sqls: list[str], expiry: Optional[float]
    ) -> Optional[list[ShardOutcome]]:
        """One pipelined batch round-trip to ``shard``.

        Returns per-statement outcomes (failed items carry their error
        and fall to the ladder), or ``None`` when the whole batch needs
        the ladder (open breaker, crashed worker, deadline)."""
        breaker = self._breakers[shard]
        if not breaker.allow():
            return None
        remaining = (
            expiry - time.monotonic() if expiry is not None else None
        )
        if remaining is not None and remaining <= 0:
            return None
        event = threading.Event()
        try:
            request_id = self.runtime.submit_batch(
                shard,
                sqls,
                timeout=remaining,
                max_rows=self.config.max_rows,
                event=event,
            )
        except Exception:
            breaker.record_failure()
            return None
        try:
            while True:
                wait = _BATCH_WAIT_SLICE
                if expiry is not None:
                    left = expiry - time.monotonic()
                    if left <= 0:
                        return None
                    wait = min(wait, left)
                _, response = self.runtime.wait_any(
                    [request_id], event, wait
                )
                if response is not None:
                    break
                if self.runtime.request_lost(request_id):
                    breaker.record_failure()
                    return None
        finally:
            self.runtime.abandon(request_id)
        if not response.get("ok"):
            breaker.record_failure()
            return None
        breaker.record_success()
        outcomes = []
        for item in marshal.loads(response["items"]):
            outcome = ShardOutcome(shard, attempts=1)
            if item.get("ok"):
                outcome.rows = item["rows"]
            else:
                outcome.kind = item.get("error_kind", "internal")
                outcome.error = item.get("error")
            outcomes.append(outcome)
        return outcomes

    def _execute_admitted(
        self, expression, deadline: Optional[float]
    ) -> QueryResult:
        translation = self.translate(expression)
        if translation.is_empty:
            return QueryResult([], translation.projection, served_by="shards")
        key = self._planner._result_key(expression)
        if key is not None:
            cached = self._planner._result_cache.get(key)
            if cached is not None:
                return cached
        budget = deadline if deadline is not None else self.config.deadline
        expiry = time.monotonic() + budget if budget is not None else None
        shard_count = self.store.shard_count
        hedge = self._hedge_allowed(translation)
        outcomes = list(
            self._scatter.map(
                lambda shard: self._query_shard(
                    shard, translation.sql, expiry, hedge=hedge
                ),
                range(shard_count),
            )
        )
        failures = [outcome for outcome in outcomes if not outcome.ok]
        if len(failures) == shard_count:
            return self._all_shards_failed(
                expression, translation.projection, failures
            )
        result = self._merge(translation, outcomes)
        if result.complete:
            self._planner._cache_result(key, result)
        else:
            self._count("partials")
        return result

    def _hedge_allowed(self, translation: object) -> bool:
        """Costed hedge gate: a query whose estimated result is below
        ``config.hedge_min_rows`` skips hedged duplicates — statistics
        never change which rows come back, only the duplicate-request
        policy.  Estimate-less translations (no statistics collected)
        hedge as before."""
        estimated = getattr(translation, "estimated_rows", None)
        if estimated is None:
            return True
        return bool(estimated >= self.config.hedge_min_rows)

    # -- the per-shard ladder ----------------------------------------------------

    def _query_shard(
        self,
        shard: int,
        sql: str,
        expiry: Optional[float],
        hedge: bool = True,
    ) -> ShardOutcome:
        """Run the hedge/retry rungs for one shard.  ``hedge=False``
        disables hedged duplicates (the costed gate for cheap queries);
        retries and breakers are unaffected."""
        outcome = ShardOutcome(shard)
        breaker = self._breakers[shard]
        if not breaker.allow():
            self._count("breaker_short_circuits")
            outcome.kind = "breaker-open"
            outcome.error = (
                f"shard {shard} circuit breaker is {breaker.state}"
            )
            return outcome
        attempts = max(1, self.config.shard_retries + 1)
        for attempt in range(attempts):
            if attempt:
                self._count("retries")
            outcome.attempts = attempt + 1
            remaining = (
                expiry - time.monotonic() if expiry is not None else None
            )
            if remaining is not None and remaining <= 0:
                outcome.kind = "deadline"
                outcome.error = f"shard {shard}: query deadline exhausted"
                break
            # This attempt's slice of the remaining deadline: split it
            # evenly over the attempts still available, so one slow
            # attempt cannot starve the retries behind it.
            slice_budget = (
                remaining / (attempts - attempt)
                if remaining is not None
                else None
            )
            primary = attempt % self.runtime.replicas
            response, kind = self._attempt(
                shard, sql, primary, slice_budget, outcome, hedge=hedge
            )
            if response is not None and response.get("ok"):
                breaker.record_success()
                outcome.rows = response["rows"]
                outcome.kind = None
                outcome.error = None
                return outcome
            breaker.record_failure()
            if response is not None:
                outcome.kind = response.get("error_kind", "internal")
                outcome.error = response.get("error")
            else:
                outcome.kind = kind
                outcome.error = (
                    f"shard {shard}: worker crashed mid-request"
                    if kind == "worker-crashed"
                    else f"shard {shard}: no response within budget"
                )
        return outcome

    def _attempt(
        self,
        shard: int,
        sql: str,
        primary: int,
        budget: Optional[float],
        outcome: ShardOutcome,
        hedge: bool = True,
    ) -> tuple[Optional[dict], str]:
        """One attempt: submit to ``primary``, hedge to the next replica
        after ``hedge_delay`` of silence, first response wins.

        Returns ``(response, kind)`` — response ``None`` means nothing
        arrived, with ``kind`` saying why (``"deadline"`` or
        ``"worker-crashed"``).
        """
        event = threading.Event()
        start = time.monotonic()
        sent: list[int] = []

        def submit(replica: int) -> None:
            left = (
                budget - (time.monotonic() - start)
                if budget is not None
                else None
            )
            sent.append(
                self.runtime.submit(
                    shard,
                    sql,
                    replica=replica,
                    timeout=left,
                    max_rows=self.config.max_rows,
                    event=event,
                )
            )

        hedge_at = (
            self.config.hedge_delay
            if hedge
            and self.config.hedge_delay is not None
            and self.runtime.replicas > 1
            else None
        )
        try:
            submit(primary)
        except Exception:
            return None, "worker-crashed"
        try:
            while True:
                elapsed = time.monotonic() - start
                if budget is not None and elapsed >= budget:
                    return None, "deadline"
                wait = _WAIT_SLICE
                if budget is not None:
                    wait = min(wait, budget - elapsed)
                if hedge_at is not None:
                    wait = min(wait, max(hedge_at - elapsed, 0.001))
                request_id, response = self.runtime.wait_any(
                    sent, event, wait
                )
                if response is not None:
                    return response, "answered"
                if all(self.runtime.request_lost(rid) for rid in sent):
                    # Every incarnation we asked is dead or fenced off;
                    # no answer can ever arrive — fail over now.
                    return None, "worker-crashed"
                if hedge_at is not None and elapsed >= hedge_at:
                    hedge_at = None
                    outcome.hedged = True
                    self._count("hedges")
                    try:
                        submit(
                            (primary + 1) % self.runtime.replicas
                        )
                    except Exception:  # noqa: S110 - hedge is optional
                        pass
        finally:
            for request_id in sent:
                self.runtime.abandon(request_id)

    # -- merging and degradation -------------------------------------------------

    def _merge(
        self,
        translation: TranslationResult,
        outcomes: list[ShardOutcome],
    ) -> QueryResult:
        """Remap shard-local rows to global ids through the document
        registry and merge in Dewey document order.

        A row naming a document the registry does not know means the
        shard file and the manifest disagree (corruption, swapped
        file): that shard's rows are *discarded* and the shard is
        reported failed — wrong attribution must never look like a
        correct answer.
        """
        remap = self.store.remap_table()
        failed = {
            outcome.shard for outcome in outcomes if not outcome.ok
        }
        rows: list[ResultRow] = []
        wants_value = translation.projection != "nodes"
        for outcome in outcomes:
            if not outcome.ok:
                continue
            shard_rows: list[ResultRow] = []
            try:
                # Shard responses arrive ordered by document, so the
                # registry lookup and id offset are resolved once per
                # document run instead of once per row.
                for local_doc, records in itertools.groupby(
                    outcome.rows, key=operator.itemgetter(1)
                ):
                    entry = remap[(outcome.shard, local_doc)]
                    offset = entry.base - entry.local_base
                    doc_id = entry.doc_id
                    if wants_value:
                        shard_rows.extend(
                            ResultRow(
                                record[0] + offset,
                                doc_id,
                                bytes(record[2]),
                                value=None
                                if len(record) < 4 or record[3] is None
                                else str(record[3]),
                            )
                            for record in records
                        )
                    else:
                        shard_rows.extend(
                            ResultRow(
                                record[0] + offset, doc_id, bytes(record[2])
                            )
                            for record in records
                        )
            except KeyError as exc:
                failed.add(outcome.shard)
                outcome.kind = "registry-mismatch"
                outcome.error = (
                    f"shard {outcome.shard} returned rows for local "
                    f"doc {exc.args[0][1]}, unknown to the manifest"
                )
                continue
            rows.extend(shard_rows)
        if isinstance(translation.statement, UnionStatement):
            # Only a UNION of branches can produce the same element
            # twice (within one shard; global ids never collide across
            # shards) — single-statement results skip the dedupe pass.
            unique: dict[int, ResultRow] = {}
            for row in rows:
                unique.setdefault(row.id, row)
            rows = list(unique.values())
        ordered = sorted(
            rows, key=operator.attrgetter("doc_id", "dewey_pos")
        )
        return QueryResult(
            ordered,
            translation.projection,
            served_by="shards",
            complete=not failed,
            failed_shards=sorted(failed),
        )

    def _all_shards_failed(
        self,
        expression,
        projection: str,
        failures: list[ShardOutcome],
    ) -> QueryResult:
        """Last rung: every shard failed — answer natively or raise."""
        if self.config.fallback:
            # The planner's fallback machinery evaluates over the
            # store's resident documents and declines (None) when they
            # cannot vouch for the stored data.
            fallback = self._planner._execute_fallback(
                expression, projection
            )
            if fallback is not None:
                self._count("fallbacks")
                return fallback
        detail = "; ".join(
            f"shard {outcome.shard}: {outcome.kind} ({outcome.error})"
            for outcome in failures
        )
        raise ShardUnavailableError(
            f"every shard failed and the native fallback was "
            f"{'unavailable' if self.config.fallback else 'disabled'}: "
            f"{detail}"
        )
