"""Document validation with diagnostics.

:meth:`Schema.conforms` answers yes/no; production loading wants to know
*where* and *why* a document deviates.  :func:`validate_document` walks
the tree and reports every violation with the offending node's path and
preorder id.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.schema.model import Schema
from repro.xmltree.nodes import Document


@dataclass(frozen=True)
class Violation:
    """One schema violation."""

    kind: str  #: ``root`` | ``unknown-element`` | ``nesting`` | ``attribute``
    node_id: int
    path: str
    message: str

    def __str__(self) -> str:
        return f"[{self.kind}] node {self.node_id} at {self.path}: {self.message}"


def iter_violations(schema: Schema, document: Document) -> Iterator[Violation]:
    """Yield every violation of ``schema`` in ``document``.

    Checks: the root element is an allowed root; every element is
    declared; every nesting edge exists; every attribute is declared for
    its element.  (Value kinds are advisory column types, not validated.)
    """
    root = document.root
    if root.name not in schema.roots:
        yield Violation(
            "root",
            root.node_id,
            root.path,
            f"element {root.name!r} is not an allowed document root "
            f"(roots: {sorted(schema.roots)})",
        )
    for element in document.iter_elements():
        if element.name not in schema:
            yield Violation(
                "unknown-element",
                element.node_id,
                element.path,
                f"element {element.name!r} is not declared",
            )
            continue
        declaration = schema[element.name]
        parent = element.parent
        if (
            parent is not None
            and parent.name in schema
            and element.name not in schema[parent.name].children
        ):
            yield Violation(
                "nesting",
                element.node_id,
                element.path,
                f"{element.name!r} may not nest under {parent.name!r} "
                f"(allowed children: {sorted(schema[parent.name].children)})",
            )
        for attr_name in element.attributes:
            if attr_name not in declaration.attributes:
                yield Violation(
                    "attribute",
                    element.node_id,
                    element.path,
                    f"attribute {attr_name!r} is not declared for "
                    f"{element.name!r}",
                )


def validate_document(
    schema: Schema, document: Document, limit: int = 100
) -> list[Violation]:
    """Collect up to ``limit`` violations (empty list = conforming)."""
    violations = []
    for violation in iter_violations(schema, document):
        violations.append(violation)
        if len(violations) >= limit:
            break
    return violations
