"""XML Schema graph model, inference and the Section 4.5 path marking.

The paper represents an XML Schema as a directed graph whose vertices are
element definitions and whose edges are nesting relationships (Section
2.1).  :class:`repro.schema.model.Schema` is that graph;
:func:`repro.schema.inference.infer_schema` derives one from sample
documents (the reproduction's stand-in for reading an XSD), and
:mod:`repro.schema.marking` computes the U-P / F-P / I-P tags and
root-to-node path enumerations that drive the redundant-path-filter
optimization of Section 4.5.
"""

from repro.schema.model import AttributeDecl, ElementDecl, Schema
from repro.schema.inference import infer_schema
from repro.schema.marking import PathClass, SchemaMarking
from repro.schema.dtd import parse_dtd
from repro.schema.xsd import parse_xsd
from repro.schema.validate import Violation, iter_violations, validate_document

__all__ = [
    "AttributeDecl",
    "ElementDecl",
    "PathClass",
    "Schema",
    "SchemaMarking",
    "Violation",
    "infer_schema",
    "iter_violations",
    "parse_dtd",
    "parse_xsd",
    "validate_document",
]
