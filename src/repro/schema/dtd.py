"""DTD parsing into the schema graph.

The paper's systems consume schema descriptions (XML Schema or DTD,
Section 1).  This module reads the DTD subset that describes document
structure:

* ``<!ELEMENT name (content-model)>`` — children are every element name
  appearing in the content model (the graph only needs the *set* of
  allowed children, not cardinalities or ordering),
* ``#PCDATA`` marks text content,
* ``EMPTY`` / ``ANY`` element declarations,
* ``<!ATTLIST name attr TYPE default>`` — attribute declarations
  (``NMTOKEN``/``NMTOKENS`` and enumerations of numbers map to the
  ``number`` kind used for column typing).

Parameter entities and conditional sections are out of scope; comments
are skipped.
"""

from __future__ import annotations

import re

from repro.errors import SchemaError
from repro.schema.model import Schema

_ELEMENT_RE = re.compile(
    r"<!ELEMENT\s+([\w.:-]+)\s+(.*?)>", re.DOTALL
)
_ATTLIST_RE = re.compile(
    r"<!ATTLIST\s+([\w.:-]+)\s+(.*?)>", re.DOTALL
)
_COMMENT_RE = re.compile(r"<!--.*?-->", re.DOTALL)
_NAME_RE = re.compile(r"[\w.:-]+")

_ATTR_DEF_RE = re.compile(
    r"([\w.:-]+)\s+"                       # attribute name
    r"(CDATA|ID|IDREFS?|ENTITY|ENTITIES|NMTOKENS?|NOTATION\s*\([^)]*\)|\([^)]*\))\s+"
    r"(#REQUIRED|#IMPLIED|#FIXED\s+(?:\"[^\"]*\"|'[^']*')|\"[^\"]*\"|'[^']*')",
    re.DOTALL,
)


def parse_dtd(text: str, root: str | None = None) -> Schema:
    """Parse a DTD document (internal-subset syntax) into a schema.

    :param root: the document root element; defaults to the first
        declared element (the usual DTD convention).
    :raises SchemaError: for unparseable declarations, an unknown root,
        or content models referencing undeclared elements.
    """
    text = _COMMENT_RE.sub(" ", text)
    elements = _ELEMENT_RE.findall(text)
    if not elements:
        raise SchemaError("DTD declares no elements")

    schema = Schema()
    declared_order: list[str] = []
    for name, _model in elements:
        if name in schema:
            raise SchemaError(f"element {name!r} declared twice")
        schema.declare(name)
        declared_order.append(name)

    for name, model in elements:
        _apply_content_model(schema, name, model.strip())

    for name, body in _ATTLIST_RE.findall(text):
        if name not in schema:
            raise SchemaError(
                f"ATTLIST for undeclared element {name!r}"
            )
        for attr_name, attr_type, _default in _ATTR_DEF_RE.findall(body):
            kind = "number" if _is_numeric_enum(attr_type) else "string"
            schema[name].add_attribute(attr_name, kind)

    root_name = root or declared_order[0]
    if root_name not in schema:
        raise SchemaError(f"root element {root_name!r} is not declared")
    schema.roots.add(root_name)
    _prune_unreachable(schema)
    schema.validate()
    return schema


def _apply_content_model(schema: Schema, name: str, model: str) -> None:
    if model in ("EMPTY",):
        return
    if model == "ANY":
        # ANY allows every declared element (including itself) as a child.
        for child in list(schema.declarations):
            schema.add_edge(name, child)
        schema[name].text_kind = "string"
        return
    has_text = "#PCDATA" in model
    if has_text:
        schema[name].text_kind = "string"
    for child in _NAME_RE.findall(model):
        if child == "#PCDATA" or child == "PCDATA":
            continue
        if child not in schema.declarations:
            raise SchemaError(
                f"content model of {name!r} references undeclared "
                f"element {child!r}"
            )
        schema.add_edge(name, child)


def _is_numeric_enum(attr_type: str) -> bool:
    """Enumerated attribute types whose alternatives are all numbers."""
    attr_type = attr_type.strip()
    if not attr_type.startswith("("):
        return False
    alternatives = [
        token.strip()
        for token in attr_type.strip("()").split("|")
    ]
    def numeric(token: str) -> bool:
        try:
            float(token)
        except ValueError:
            return False
        return True
    return bool(alternatives) and all(numeric(t) for t in alternatives)


def _prune_unreachable(schema: Schema) -> None:
    """Drop declarations the root cannot reach (validate() rejects them,
    and DTDs routinely declare alternate roots)."""
    reachable = schema.reachable_from_roots()
    for name in list(schema.declarations):
        if name not in reachable:
            del schema.declarations[name]
    for decl in schema.declarations.values():
        decl.children &= reachable
        decl.parents &= reachable
