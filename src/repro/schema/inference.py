"""Schema inference from sample documents.

The paper consumes XML Schema documents; the reproduction derives the
equivalent schema graph from the documents themselves (a standard DTD
inference): every element name becomes a declaration, observed nestings
become edges, and text/attribute value kinds are ``number`` when *every*
observed value parses as a number, else ``string``.
"""

from __future__ import annotations

from typing import Iterable

from repro.schema.model import Schema
from repro.xmltree.nodes import Document


def _looks_numeric(value: str) -> bool:
    try:
        float(value)
    except ValueError:
        return False
    return True


def infer_schema(documents: Iterable[Document]) -> Schema:
    """Build a :class:`Schema` accepting every supplied document.

    Value-kind inference is conservative: a single non-numeric observation
    of an attribute or text value degrades that slot to ``string``.
    """
    schema = Schema()
    # Kinds observed so far: name -> attr/text slot -> still-numeric flag.
    attr_numeric: dict[tuple[str, str], bool] = {}
    text_numeric: dict[str, bool] = {}
    has_text: set[str] = set()

    for document in documents:
        schema.add_root(document.root.name)
        for element in document.iter_elements():
            decl = schema.declare(element.name)
            for child in element.element_children:
                schema.add_edge(element.name, child.name)
            for attr_name, value in element.attributes.items():
                key = (element.name, attr_name)
                numeric = attr_numeric.get(key, True) and _looks_numeric(value)
                attr_numeric[key] = numeric
                decl.add_attribute(attr_name)
            text = element.direct_text
            if text.strip():
                has_text.add(element.name)
                text_numeric[element.name] = (
                    text_numeric.get(element.name, True)
                    and _looks_numeric(text.strip())
                )

    for (name, attr_name), numeric in attr_numeric.items():
        schema[name].attributes[attr_name].kind = (
            "number" if numeric else "string"
        )
    for name in has_text:
        schema[name].text_kind = (
            "number" if text_numeric.get(name, False) else "string"
        )
    schema.validate()
    return schema
