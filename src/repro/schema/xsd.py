"""XML Schema (XSD subset) reading into the schema graph.

The paper's mapping rules are phrased over XML Schema (Section 3):
complex types map to relations shared by all elements of that type,
other element declarations get their own relation.  This reader covers
the structural XSD subset those rules need:

* top-level ``xs:element`` declarations (the document roots),
* named top-level ``xs:complexType`` definitions, referenced via
  ``type="T"`` — these become :attr:`ElementDecl.type_name`, which the
  relational mapping turns into *shared* relations,
* anonymous inline ``xs:complexType``,
* ``xs:sequence`` / ``xs:choice`` / ``xs:all`` content (arbitrarily
  nested; the graph keeps the set of allowed children),
* ``xs:element ref="..."`` references,
* ``xs:attribute`` with built-in simple types (numeric types map to the
  ``number`` column kind),
* ``mixed="true"`` and simple-typed elements for text content.

Imports, substitution groups, restrictions/extensions and facets are out
of scope.
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema.model import ElementDecl, Schema
from repro.xmltree.nodes import ElementNode
from repro.xmltree.parser import parse_document

_NUMERIC_TYPES = {
    "integer", "int", "long", "short", "byte", "decimal", "float",
    "double", "positiveInteger", "nonNegativeInteger", "negativeInteger",
    "nonPositiveInteger", "unsignedInt", "unsignedLong", "unsignedShort",
}

_TEXT_TYPES = {
    "string", "token", "normalizedString", "anyURI", "date", "dateTime",
    "time", "NMTOKEN", "Name", "NCName", "ID", "IDREF", "language",
    "boolean",
}


def _local(name: str) -> str:
    return name.rsplit(":", 1)[-1]


def _value_kind(type_name: str | None) -> str:
    if type_name is not None and _local(type_name) in _NUMERIC_TYPES:
        return "number"
    return "string"


def _is_simple_type(type_name: str) -> bool:
    local = _local(type_name)
    return local in _NUMERIC_TYPES or local in _TEXT_TYPES


class _XSDReader:
    def __init__(self, root: ElementNode):
        if _local(root.name) != "schema":
            raise SchemaError(
                f"not an XML Schema document (root {root.name!r})"
            )
        self.schema = Schema()
        self.root = root
        #: name -> the xs:complexType definition element
        self.complex_types: dict[str, ElementNode] = {}
        #: name -> the top-level xs:element element
        self.global_elements: dict[str, ElementNode] = {}
        #: (element name, type name) pairs already expanded (recursion stop)
        self._expanded: set[tuple[str, str]] = set()
        #: declaration nodes currently being expanded (recursive schemas
        #: reach the same node again through xs:element ref)
        self._in_flight: set[int] = set()

    def read(self) -> Schema:
        """Collect global definitions, expand them, validate the graph."""
        for child in self.root.element_children:
            kind = _local(child.name)
            name = child.get("name")
            if kind == "complexType" and name:
                if name in self.complex_types:
                    raise SchemaError(f"complexType {name!r} defined twice")
                self.complex_types[name] = child
            elif kind == "element" and name:
                if name in self.global_elements:
                    raise SchemaError(
                        f"global element {name!r} declared twice"
                    )
                self.global_elements[name] = child
        if not self.global_elements:
            raise SchemaError("schema declares no global elements")
        for name, node in self.global_elements.items():
            self.schema.roots.add(name)
            self._declare_element(node)
        self.schema.validate()
        return self.schema

    # -- elements -----------------------------------------------------------

    def _declare_element(self, node: ElementNode) -> str:
        """Declare the element ``node`` describes; returns its name."""
        ref = node.get("ref")
        if ref is not None:
            target = self.global_elements.get(_local(ref))
            if target is None:
                raise SchemaError(f"element ref {ref!r} has no declaration")
            return self._declare_element(target)
        name = node.get("name")
        if not name:
            raise SchemaError("xs:element without name or ref")
        if id(node) in self._in_flight:
            return name  # recursive reference; the edge is all we need
        self._in_flight.add(id(node))
        try:
            return self._declare_named_element(node, name)
        finally:
            self._in_flight.discard(id(node))

    def _declare_named_element(self, node: ElementNode, name: str) -> str:
        type_attr = node.get("type")
        inline = _first_child(node, "complexType")
        if type_attr is not None and _is_simple_type(type_attr):
            decl = self.schema.declare(name)
            decl.text_kind = _value_kind(type_attr)
        elif type_attr is not None:
            type_name = _local(type_attr)
            definition = self.complex_types.get(type_name)
            if definition is None:
                raise SchemaError(
                    f"element {name!r} references unknown type "
                    f"{type_attr!r}"
                )
            self.schema.declare(name, type_name=type_name)
            self._expand_complex_type(name, type_name, definition)
        elif inline is not None:
            self.schema.declare(name)
            self._apply_complex_body(name, inline)
        else:
            # xs:element with neither type nor body: empty element.
            self.schema.declare(name)
        return name

    def _expand_complex_type(
        self, element_name: str, type_name: str, definition: ElementNode
    ) -> None:
        key = (element_name, type_name)
        if key in self._expanded:
            return
        self._expanded.add(key)
        self._apply_complex_body(element_name, definition)

    # -- complex type bodies -------------------------------------------------

    def _apply_complex_body(
        self, element_name: str, body: ElementNode
    ) -> None:
        decl = self.schema[element_name]
        if body.get("mixed") == "true":
            decl.text_kind = decl.text_kind or "string"
        for child in body.element_children:
            kind = _local(child.name)
            if kind in ("sequence", "choice", "all"):
                self._apply_particle(element_name, child)
            elif kind == "attribute":
                self._apply_attribute(decl, child)
            elif kind == "simpleContent":
                self._apply_simple_content(decl, child)
            elif kind != "annotation":
                raise SchemaError(
                    f"unsupported construct xs:{kind} in type of "
                    f"{element_name!r}"
                )

    def _apply_particle(
        self, element_name: str, particle: ElementNode
    ) -> None:
        for child in particle.element_children:
            kind = _local(child.name)
            if kind == "element":
                child_name = self._declare_element(child)
                self.schema.add_edge(element_name, child_name)
            elif kind in ("sequence", "choice", "all"):
                self._apply_particle(element_name, child)
            elif kind not in ("annotation", "any"):
                raise SchemaError(
                    f"unsupported particle xs:{kind} under "
                    f"{element_name!r}"
                )

    def _apply_attribute(self, decl: ElementDecl, node: ElementNode) -> None:
        name = node.get("name")
        if not name:
            raise SchemaError("xs:attribute without a name")
        decl.add_attribute(name, _value_kind(node.get("type")))

    def _apply_simple_content(
        self, decl: ElementDecl, node: ElementNode
    ) -> None:
        extension = _first_child(node, "extension")
        base = extension.get("base") if extension is not None else None
        decl.text_kind = _value_kind(base)
        if extension is not None:
            for child in extension.element_children:
                if _local(child.name) == "attribute":
                    self._apply_attribute(decl, child)


def _first_child(node: ElementNode, local_name: str) -> ElementNode | None:
    for child in node.element_children:
        if _local(child.name) == local_name:
            return child
    return None


def parse_xsd(text: str) -> Schema:
    """Parse an XSD document into a :class:`Schema`.

    :raises SchemaError: for documents outside the supported subset.
    """
    document = parse_document(text, name="xsd")
    return _XSDReader(document.root).read()
