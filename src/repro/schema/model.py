"""The XML Schema graph: element declarations and nesting edges.

Declarations are DTD-style — one global declaration per element name, as
in the paper's running example (Figure 1a) and both evaluation schemas
(XMark, DBLP).  A declaration records the attributes, whether the element
carries text, the inferred value kinds (``'string'`` or ``'number'``,
which decide relational column types), and the set of allowed child
element names.  The graph is navigable both downward (children) and
upward (parents), which PPF candidate-relation resolution needs for
backward fragments.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.errors import SchemaError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.xmltree.nodes import Document

#: Value kinds a text node or attribute may map to.
VALUE_KINDS = ("string", "number")


@dataclass
class AttributeDecl:
    """One attribute of an element declaration."""

    name: str
    kind: str = "string"

    def __post_init__(self) -> None:
        if self.kind not in VALUE_KINDS:
            raise SchemaError(f"unknown value kind {self.kind!r}")


@dataclass
class ElementDecl:
    """One element declaration (a vertex of the schema graph)."""

    name: str
    #: Optional globally defined complex type; declarations sharing a type
    #: share one relation in the schema-aware mapping (Section 3).
    type_name: str | None = None
    attributes: dict[str, AttributeDecl] = field(default_factory=dict)
    #: ``None`` if the element never carries text, else the value kind.
    text_kind: str | None = None
    children: set[str] = field(default_factory=set)
    parents: set[str] = field(default_factory=set)

    def add_attribute(self, name: str, kind: str = "string") -> None:
        """Declare an attribute; conflicting kinds degrade to string."""
        existing = self.attributes.get(name)
        if existing is None:
            self.attributes[name] = AttributeDecl(name, kind)
        elif existing.kind != kind:
            # Conflicting observations degrade to string.
            existing.kind = "string"


class Schema:
    """A directed graph of element declarations.

    :param roots: element names allowed as document roots.
    """

    def __init__(self, roots: Iterable[str] = ()):
        self.roots: set[str] = set(roots)
        self.declarations: dict[str, ElementDecl] = {}
        for root in self.roots:
            self.declare(root)

    # -- construction --------------------------------------------------------

    def declare(self, name: str, type_name: str | None = None) -> ElementDecl:
        """Get or create the declaration for element ``name``."""
        decl = self.declarations.get(name)
        if decl is None:
            decl = ElementDecl(name, type_name=type_name)
            self.declarations[name] = decl
        elif type_name is not None:
            if decl.type_name not in (None, type_name):
                raise SchemaError(
                    f"element {name!r} redeclared with type {type_name!r}, "
                    f"was {decl.type_name!r}"
                )
            decl.type_name = type_name
        return decl

    def add_root(self, name: str) -> ElementDecl:
        """Declare ``name`` and allow it as a document root."""
        self.roots.add(name)
        return self.declare(name)

    def add_edge(self, parent: str, child: str) -> None:
        """Allow ``child`` elements to nest directly under ``parent``."""
        parent_decl = self.declare(parent)
        child_decl = self.declare(child)
        parent_decl.children.add(child)
        child_decl.parents.add(parent)

    # -- lookup ---------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self.declarations

    def __getitem__(self, name: str) -> ElementDecl:
        try:
            return self.declarations[name]
        except KeyError:
            raise SchemaError(f"unknown element {name!r}") from None

    def element_names(self) -> list[str]:
        """All declared element names, insertion-ordered."""
        return list(self.declarations)

    def children_of(self, name: str) -> set[str]:
        """Element names allowed directly under ``name``."""
        return self[name].children

    def parents_of(self, name: str) -> set[str]:
        """Element names ``name`` may nest directly under."""
        return self[name].parents

    # -- graph reachability ----------------------------------------------------

    def descendants_of(self, names: Iterable[str]) -> set[str]:
        """All element names reachable by one or more downward edges."""
        return self._closure(names, lambda n: self[n].children)

    def ancestors_of(self, names: Iterable[str]) -> set[str]:
        """All element names reachable by one or more upward edges."""
        return self._closure(names, lambda n: self[n].parents)

    def _closure(
        self, names: Iterable[str], succ: Callable[[str], Iterable[str]]
    ) -> set[str]:
        seen: set[str] = set()
        frontier = list(names)
        while frontier:
            current = frontier.pop()
            for nxt in succ(current):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def reachable_from_roots(self) -> set[str]:
        """Roots plus everything nested below them."""
        return set(self.roots) | self.descendants_of(self.roots)

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check internal consistency.

        :raises SchemaError: for dangling edges or unreachable declarations.
        """
        if not self.roots:
            raise SchemaError("schema has no root elements")
        for name, decl in self.declarations.items():
            for child in decl.children:
                if child not in self.declarations:
                    raise SchemaError(f"edge {name!r}->{child!r} dangles")
                if name not in self.declarations[child].parents:
                    raise SchemaError(
                        f"edge {name!r}->{child!r} missing reverse link"
                    )
        unreachable = set(self.declarations) - self.reachable_from_roots()
        if unreachable:
            raise SchemaError(
                f"declarations unreachable from roots: {sorted(unreachable)}"
            )

    def conforms(self, document: Document) -> bool:
        """True if every element of ``document`` fits this schema's graph
        (names, nesting, root)."""
        root = document.root
        if root.name not in self.roots:
            return False
        for element in document.iter_elements():
            if element.name not in self.declarations:
                return False
            parent = element.parent
            if parent is not None and element.name not in self[parent.name].children:
                return False
        return True

    # -- iteration -----------------------------------------------------------------

    def edges(self) -> Iterator[tuple[str, str]]:
        """All nesting edges as (parent, child) pairs."""
        for name, decl in self.declarations.items():
            for child in sorted(decl.children):
                yield name, child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Schema(roots={sorted(self.roots)}, "
            f"elements={len(self.declarations)})"
        )

    # -- (de)serialization ----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable snapshot of the schema graph.

        The shredded store persists this next to the data so a database
        file can be reopened without the original documents.
        """
        return {
            "roots": sorted(self.roots),
            "elements": [
                {
                    "name": decl.name,
                    "type": decl.type_name,
                    "text": decl.text_kind,
                    "attributes": [
                        {"name": a.name, "kind": a.kind}
                        for a in decl.attributes.values()
                    ],
                    "children": sorted(decl.children),
                }
                for decl in self.declarations.values()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        """Rebuild a schema from :meth:`to_dict` output."""
        schema = cls()
        for entry in data["elements"]:
            decl = schema.declare(entry["name"], entry.get("type"))
            decl.text_kind = entry.get("text")
            for attribute in entry.get("attributes", []):
                decl.add_attribute(attribute["name"], attribute["kind"])
        for entry in data["elements"]:
            for child in entry.get("children", []):
                schema.add_edge(entry["name"], child)
        schema.roots = set(data["roots"])
        schema.validate()
        return schema


def figure1_schema() -> Schema:
    """The running-example schema of the paper's Figure 1a.

    ``A → B``, ``B → {C, G}``, ``C → {D, E}``, ``E → F``, ``G → G``
    (recursive), with attribute ``x`` on ``A`` and ``D``, and numeric text
    on ``F``.
    """
    schema = Schema(roots=["A"])
    for parent, child in [
        ("A", "B"),
        ("B", "C"),
        ("B", "G"),
        ("C", "D"),
        ("C", "E"),
        ("E", "F"),
        ("G", "G"),
    ]:
        schema.add_edge(parent, child)
    schema["A"].add_attribute("x", "number")
    schema["D"].add_attribute("x", "number")
    schema["F"].text_kind = "number"
    return schema
