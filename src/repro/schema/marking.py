"""U-P / F-P / I-P marking of the schema graph (paper Section 4.5).

Every schema vertex is tagged by how many distinct root-to-node label
paths lead to it:

* ``U-P`` (unique path)  — exactly one; the `Paths` join is *never* needed,
* ``F-P`` (finite paths) — finitely many; the translator tests the
  enumerated paths against the fragment's regular expression and only
  joins `Paths` when at least one enumerated path does not match,
* ``I-P`` (infinite paths) — a cycle lies on some root-to-node path; the
  `Paths` join is always required.
"""

from __future__ import annotations

import enum
from functools import lru_cache
from typing import Iterator

from repro.errors import SchemaError
from repro.schema.model import Schema


class PathClass(enum.Enum):
    """The Section 4.5 tag of a schema vertex."""

    UNIQUE = "U-P"
    FINITE = "F-P"
    INFINITE = "I-P"


class SchemaMarking:
    """Computes and caches path classifications for one schema.

    :param schema: the schema graph to mark.
    :param max_paths: enumeration cap; a vertex whose acyclic path count
        exceeds it is treated as ``I-P`` (always filter), which is safe —
        the optimization only ever *removes* filters.
    """

    def __init__(self, schema: Schema, max_paths: int = 64):
        self.schema = schema
        self.max_paths = max_paths
        self._classify = lru_cache(maxsize=None)(self._classify_uncached)
        self._enumerate = lru_cache(maxsize=None)(self._enumerate_uncached)

    # -- public API ------------------------------------------------------------

    def classify(self, name: str) -> PathClass:
        """The U-P / F-P / I-P tag of element ``name``."""
        return self._classify(name)

    def root_paths(self, name: str) -> list[str] | None:
        """All root-to-node label paths of ``name`` (e.g. ``['/A/B/C']``),
        or ``None`` when the set is infinite (``I-P``)."""
        if self.classify(name) is PathClass.INFINITE:
            return None
        return list(self._enumerate(name))

    def marking_table(self) -> dict[str, PathClass]:
        """Tag for every element reachable from the roots (Figure 2)."""
        return {
            name: self.classify(name)
            for name in sorted(self.schema.reachable_from_roots())
        }

    # -- internals --------------------------------------------------------------

    def _relevant_vertices(self, name: str) -> set[str]:
        """Vertices lying on some root-to-``name`` walk."""
        reachable = self.schema.reachable_from_roots()
        if name not in reachable:
            raise SchemaError(
                f"element {name!r} is not reachable from the schema roots"
            )
        co_reachable = {name} | self.schema.ancestors_of([name])
        return reachable & co_reachable

    def _has_cycle(self, vertices: set[str]) -> bool:
        """Cycle detection restricted to ``vertices`` (iterative DFS)."""
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {v: WHITE for v in vertices}
        for start in vertices:
            if color[start] != WHITE:
                continue
            stack: list[tuple[str, Iterator[str]]] = [
                (start, iter(sorted(self.schema[start].children & vertices)))
            ]
            color[start] = GRAY
            while stack:
                vertex, children = stack[-1]
                advanced = False
                for child in children:
                    if color[child] == GRAY:
                        return True
                    if color[child] == WHITE:
                        color[child] = GRAY
                        stack.append(
                            (
                                child,
                                iter(
                                    sorted(
                                        self.schema[child].children & vertices
                                    )
                                ),
                            )
                        )
                        advanced = True
                        break
                if not advanced:
                    color[vertex] = BLACK
                    stack.pop()
        return False

    def _classify_uncached(self, name: str) -> PathClass:
        vertices = self._relevant_vertices(name)
        if self._has_cycle(vertices):
            return PathClass.INFINITE
        paths = self._enumerate_paths(name, vertices)
        if paths is None:
            return PathClass.INFINITE
        if len(paths) == 1:
            return PathClass.UNIQUE
        return PathClass.FINITE

    def _enumerate_uncached(self, name: str) -> tuple[str, ...]:
        vertices = self._relevant_vertices(name)
        paths = self._enumerate_paths(name, vertices)
        if paths is None:  # pragma: no cover - guarded by classify()
            raise SchemaError(f"element {name!r} has infinitely many paths")
        return tuple(paths)

    def _enumerate_paths(
        self, name: str, vertices: set[str]
    ) -> list[str] | None:
        """All root-to-``name`` paths within the (acyclic) vertex set, or
        ``None`` when more than :attr:`max_paths` exist."""
        memo: dict[str, list[str] | None] = {}

        def paths_to(vertex: str) -> list[str] | None:
            if vertex in memo:
                return memo[vertex]
            collected: list[str] = []
            if vertex in self.schema.roots:
                collected.append("/" + vertex)
            for parent in sorted(self.schema[vertex].parents & vertices):
                parent_paths = paths_to(parent)
                if parent_paths is None:
                    memo[vertex] = None
                    return None
                collected.extend(p + "/" + vertex for p in parent_paths)
                if len(collected) > self.max_paths:
                    memo[vertex] = None
                    return None
            memo[vertex] = collected
            return collected

        return paths_to(name)
