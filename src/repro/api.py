"""The one public entry point: :func:`connect` + :class:`EngineConfig`.

Engine construction has drifted across PRs: ``PPFEngine(store,
passes=..., dialect=..., result_cache_size=...)``,
``ShardedEngine.serve(store, config=ServingConfig(...))``, pools
attached by hand, and per-call kwargs that differ between the two.
:func:`connect` replaces all of that for the common cases::

    import repro

    with repro.connect("corpus.db") as engine:          # single store
        for row in engine.execute("/site/regions/*/item"):
            ...

    with repro.connect("shards/") as engine:            # sharded store
        results = engine.execute_many(queries, deadline=5.0)

    engine = repro.connect("shards/")                   # asyncio client
    try:
        result = await engine.execute_async("//price", deadline=1.0)
    finally:
        engine.close()

``connect`` autodetects what it was given — a single SQLite store file
or a sharded store directory (``manifest.json``) — and returns an
object satisfying the :class:`Engine` protocol either way: ``execute``
/ ``execute_many`` / ``execute_async`` / ``explain`` / ``close``, plus
the context-manager surface.  Everything the engine opened on your
behalf (database, pool, worker fleet) is released by ``close``.

:class:`EngineConfig` consolidates the tuning surface of both engine
families in one frozen dataclass; fields that do not apply to the
detected store kind are simply unused (a single store has no hedging,
a sharded store has no client-side connection pool).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Optional,
    Protocol,
    Union,
    runtime_checkable,
)

from repro.core.engine import PPFEngine, QueryResult
from repro.errors import StorageError
from repro.resilience.policy import ResiliencePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sqlgen.dialect import AnsiDialect
    from repro.xpath.ast import XPathExpr


@dataclass(frozen=True)
class EngineConfig:
    """Every engine tunable, in one place.

    The same config object drives both engine families; see each field
    for which family consumes it.  ``EngineConfig()`` reproduces the
    defaults the individual constructors always had.
    """

    # -- planning / translation (both families) --
    #: Section 4.5 — omit provably redundant `Paths` joins.
    path_filter_optimization: bool = True
    #: Section 4.2 — foreign-key equijoins for single-step PPFs.
    prefer_fk_joins: bool = True
    #: Explicit optimizer-pass selection (``None`` = default pipeline).
    passes: Optional[tuple[str, ...]] = None
    #: SQL dialect to lower plans through (``None`` = SQLite).
    dialect: Optional["AnsiDialect"] = None
    #: Statically verify every fresh translation (debug gate).
    verify_plans: bool = False

    # -- execution (both families) --
    #: Per-query wall-clock budget in seconds (``None`` = unlimited):
    #: the resilience policy's query timeout on a single store, the
    #: serving deadline over a sharded one.
    deadline: Optional[float] = 5.0
    #: Per-query row cap (``None`` = unlimited).
    max_rows: Optional[int] = None
    #: Degrade to the native evaluator when SQL cannot answer (needs
    #: resident documents; silently inert for disk-opened stores).
    fallback: bool = True
    #: Entries in the generation-keyed result cache (``None`` = off).
    result_cache_size: Optional[int] = 128

    # -- single-store serving --
    #: Read-only connection-pool size for ``execute_many`` /
    #: ``execute_parallel`` fan-out (0 = no pool, serial execution).
    pool_size: int = 0
    #: Cost gate on UNION-branch fan-out: estimated results below this
    #: many rows stay on the single-connection path.
    parallel_min_rows: float = 64.0

    # -- sharded serving (ServingConfig fields + fleet shape) --
    #: Worker replicas per shard.
    replicas: int = 2
    #: Seconds of silence before a hedged duplicate request
    #: (``None`` disables hedging).
    hedge_delay: Optional[float] = 0.05
    #: Costed hedge gate: estimated results below this skip hedging.
    hedge_min_rows: float = 16.0
    #: Extra attempts per shard after the first failure.
    shard_retries: int = 1
    #: Maximum queries in flight (admission control).
    max_inflight: int = 8
    #: Seconds to wait for an admission slot before
    #: :class:`~repro.errors.AdmissionRejectedError`; ``None`` waits
    #: without limit (awaitable backpressure on the async front door).
    admission_timeout: Optional[float] = 0.5
    #: Consecutive per-shard failures that trip the circuit breaker.
    breaker_threshold: int = 3
    #: Seconds a tripped breaker stays open.
    breaker_cooldown: float = 1.0

    def serving_config(self):
        """This config's sharded-serving slice, as the
        :class:`~repro.serving.scatter.ServingConfig` the scatter
        engine consumes."""
        from repro.serving.scatter import ServingConfig

        return ServingConfig(
            deadline=self.deadline,
            hedge_delay=self.hedge_delay,
            hedge_min_rows=self.hedge_min_rows,
            shard_retries=self.shard_retries,
            max_inflight=self.max_inflight,
            admission_timeout=self.admission_timeout,
            breaker_threshold=self.breaker_threshold,
            breaker_cooldown=self.breaker_cooldown,
            max_rows=self.max_rows,
            fallback=self.fallback,
            result_cache_size=self.result_cache_size,
        )

    def policy(self) -> ResiliencePolicy:
        """This config's single-store slice, as a
        :class:`~repro.resilience.ResiliencePolicy`."""
        return ResiliencePolicy(
            query_timeout=self.deadline, max_rows=self.max_rows
        )


@runtime_checkable
class Engine(Protocol):
    """What :func:`connect` returns — the query surface both engine
    families satisfy (``isinstance(engine, Engine)`` checks it at
    runtime).

    The shared contract: ``execute_many`` returns results in input
    order; partial results are *flagged*, never silent
    (``QueryResult.complete`` / ``failed_shards``); ``served_by`` is
    drawn from the closed :data:`~repro.core.engine.SERVED_BY`
    vocabulary; ``close`` releases everything the engine owns and the
    engine is a context manager around it.
    """

    def execute(
        self,
        expression: Union[str, "XPathExpr"],
        *,
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Run one query; document-ordered result."""
        ...  # pragma: no cover - protocol

    def execute_many(
        self,
        expressions,
        *,
        deadline: Optional[float] = None,
        concurrency: Optional[int] = None,
    ) -> list[QueryResult]:
        """Run many queries; results in input order, ``deadline``
        budgets the whole call."""
        ...  # pragma: no cover - protocol

    async def execute_async(
        self,
        expression: Union[str, "XPathExpr"],
        *,
        deadline: Optional[float] = None,
    ) -> QueryResult:
        """Awaitable :meth:`execute` for event-loop callers."""
        ...  # pragma: no cover - protocol

    def explain(self, expression: Union[str, "XPathExpr"]):
        """The SQL (and plan) the query would run."""
        ...  # pragma: no cover - protocol

    def close(self) -> None:
        """Release everything the engine owns."""
        ...  # pragma: no cover - protocol

    def __enter__(self): ...  # pragma: no cover - protocol

    def __exit__(self, *exc_info): ...  # pragma: no cover - protocol


def _is_sharded_dir(path: str) -> bool:
    return os.path.isdir(path) and os.path.exists(
        os.path.join(path, "manifest.json")
    )


def connect(
    path_or_dir: Union[str, "os.PathLike[str]"],
    *,
    config: Optional[EngineConfig] = None,
) -> Engine:
    """Open a store and return a ready-to-query :class:`Engine`.

    ``path_or_dir`` is either a single-store SQLite file (returns a
    :class:`~repro.core.engine.PPFEngine`, with a read-only connection
    pool attached when ``config.pool_size`` > 0) or a sharded store
    directory with a ``manifest.json`` (spawns a supervised worker
    fleet and returns a :class:`~repro.serving.scatter.ShardedEngine`).
    Either way the engine owns what was opened for it: ``close()`` (or
    leaving the ``with`` block) tears down pools, fleets, and database
    handles.

    :raises StorageError: the path is neither an existing store file
        nor a sharded store directory.
    """
    path = os.fspath(path_or_dir)
    config = config if config is not None else EngineConfig()
    if _is_sharded_dir(path):
        return _connect_sharded(path, config)
    if os.path.isdir(path):
        raise StorageError(
            f"{path!r} is a directory without a manifest.json — not a "
            f"sharded store (create one with `repro shard create`)"
        )
    if not os.path.exists(path):
        raise StorageError(
            f"{path!r} does not exist — shred documents into it first "
            f"(`repro shred`) or pass a sharded store directory"
        )
    return _connect_single(path, config)


def _connect_single(path: str, config: EngineConfig) -> "PPFEngine":
    from repro.serving.pool import ConnectionPool
    from repro.storage.database import Database
    from repro.storage.schema_aware import ShreddedStore

    policy = config.policy()
    # Shared across threads so execute_async (which runs the blocking
    # engine on an executor thread) works on the same handle; the
    # stdlib sqlite3 build is SERIALIZED (threadsafety == 3).
    db = Database.open(path, policy=policy, check_same_thread=False)
    try:
        store = ShreddedStore.open(db)
        pool = None
        if config.pool_size > 0:
            pool = ConnectionPool.for_store(
                store, size=config.pool_size, policy=policy
            )
        engine = PPFEngine(
            store,
            path_filter_optimization=config.path_filter_optimization,
            prefer_fk_joins=config.prefer_fk_joins,
            fallback=config.fallback,
            result_cache_size=config.result_cache_size,
            pool=pool,
            passes=config.passes,
            dialect=config.dialect,
            verify_plans=config.verify_plans,
        )
    except BaseException:
        db.close()
        raise
    engine.parallel_min_rows = config.parallel_min_rows
    if pool is not None:
        engine._on_close.append(pool.close)
    engine._on_close.append(db.close)
    return engine


def _connect_sharded(path: str, config: EngineConfig):
    from repro.serving.scatter import ShardedEngine
    from repro.serving.shards import ShardedStore

    store = ShardedStore.open(path)
    try:
        engine = ShardedEngine.serve(
            store,
            config=config.serving_config(),
            replicas=config.replicas,
            verify_plans=config.verify_plans,
        )
    except BaseException:
        store.close()
        raise
    engine._on_close.append(store.close)
    return engine
