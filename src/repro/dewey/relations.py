"""Structural-relationship predicates over encoded Dewey positions.

Each predicate mirrors a row of the paper's Table 2: it is phrased purely
as bytewise lexicographic comparisons (plus, for the sibling axes, a
shared-parent check), so that the Python-side truth matches the SQL-side
condition the translator emits, byte for byte.

:func:`sql_condition` produces the SQL text of those same conditions for
two relation aliases; the translator and the tests both use it, which
keeps the Python predicates and the generated SQL provably in sync.
"""

from __future__ import annotations

import enum

from repro.dewey.codec import (
    COMPONENT_BYTES,
    descendant_upper_bound,
    level_of,
)
from repro.errors import DeweyError


class Relationship(enum.Enum):
    """Structural relationship of a node ``n2`` relative to a node ``n1``."""

    SELF = "self"
    CHILD = "child"
    PARENT = "parent"
    DESCENDANT = "descendant"
    ANCESTOR = "ancestor"
    FOLLOWING = "following"
    PRECEDING = "preceding"
    FOLLOWING_SIBLING = "following-sibling"
    PRECEDING_SIBLING = "preceding-sibling"


def is_descendant(d2: bytes, d1: bytes) -> bool:
    """Lemma 1: ``n2`` is a descendant of ``n1`` iff
    ``d(n2) > d(n1)`` and ``d(n2) < d(n1) || 0xFF``."""
    return d1 < d2 < descendant_upper_bound(d1)


def is_ancestor(d2: bytes, d1: bytes) -> bool:
    """``n2`` is an ancestor of ``n1``."""
    return is_descendant(d1, d2)


def is_following(d2: bytes, d1: bytes) -> bool:
    """Lemma 2: ``n2`` follows ``n1`` in document order (excluding
    descendants of ``n1``) iff ``d(n2) > d(n1) || 0xFF``."""
    return d2 > descendant_upper_bound(d1)


def is_preceding(d2: bytes, d1: bytes) -> bool:
    """``n2`` precedes ``n1`` (excluding ancestors of ``n1``)."""
    return is_following(d1, d2)


def _same_parent(d2: bytes, d1: bytes) -> bool:
    return (
        len(d1) == len(d2)
        and level_of(d1) >= 1
        and d1[:-COMPONENT_BYTES] == d2[:-COMPONENT_BYTES]
    )


def is_following_sibling(d2: bytes, d1: bytes) -> bool:
    """``n2`` is a later sibling of ``n1``."""
    return _same_parent(d2, d1) and d2 > d1


def is_preceding_sibling(d2: bytes, d1: bytes) -> bool:
    """``n2`` is an earlier sibling of ``n1``."""
    return _same_parent(d2, d1) and d2 < d1


def relationship(d2: bytes, d1: bytes) -> Relationship:
    """Classify node ``n2`` relative to node ``n1`` by their encodings."""
    if d2 == d1:
        return Relationship.SELF
    if is_descendant(d2, d1):
        if level_of(d2) == level_of(d1) + 1:
            return Relationship.CHILD
        return Relationship.DESCENDANT
    if is_ancestor(d2, d1):
        if level_of(d2) == level_of(d1) - 1:
            return Relationship.PARENT
        return Relationship.ANCESTOR
    if is_following_sibling(d2, d1):
        return Relationship.FOLLOWING_SIBLING
    if is_preceding_sibling(d2, d1):
        return Relationship.PRECEDING_SIBLING
    if is_following(d2, d1):
        return Relationship.FOLLOWING
    if is_preceding(d2, d1):
        return Relationship.PRECEDING
    raise DeweyError("encodings are not comparable")  # pragma: no cover


#: SQL fragment templates per axis, following Table 2 of the paper.  ``{c}``
#: is the alias holding the *context* nodes (the previous PPF's prominent
#: relation, R1 in the paper) and ``{t}`` the alias holding the *target*
#: nodes selected by the axis (R2).  ``X'FF'`` is the SQLite blob literal
#: for the descendant upper-bound suffix; the CAST keeps the
#: concatenation a BLOB (SQLite's ``||`` yields TEXT otherwise, which
#: never compares equal to a BLOB).
_UPPER = "CAST({x}.dewey_pos || X'FF' AS BLOB)"

_AXIS_CONDITIONS = {
    "descendant": (
        "{t}.dewey_pos > {c}.dewey_pos "
        "AND {t}.dewey_pos < " + _UPPER.format(x="{c}")
    ),
    "descendant-or-self": (
        "{t}.dewey_pos >= {c}.dewey_pos "
        "AND {t}.dewey_pos < " + _UPPER.format(x="{c}")
    ),
    "ancestor": (
        "{c}.dewey_pos > {t}.dewey_pos "
        "AND {c}.dewey_pos < " + _UPPER.format(x="{t}")
    ),
    "ancestor-or-self": (
        "{c}.dewey_pos >= {t}.dewey_pos "
        "AND {c}.dewey_pos < " + _UPPER.format(x="{t}")
    ),
    "following": "{t}.dewey_pos > " + _UPPER.format(x="{c}"),
    "preceding": "{c}.dewey_pos > " + _UPPER.format(x="{t}"),
    "following-sibling": (
        "{t}.dewey_pos > {c}.dewey_pos AND {t}.par_id = {c}.par_id"
    ),
    "preceding-sibling": (
        "{t}.dewey_pos < {c}.dewey_pos AND {t}.par_id = {c}.par_id"
    ),
    "self": "{t}.dewey_pos = {c}.dewey_pos",
    # child/parent expressed through Dewey rather than foreign keys: the
    # target is inside the context's range (or vice versa) at the adjacent
    # level.  The translator prefers FK equijoins (Section 4.2), but these
    # forms are needed for the ablation bench and the Edge mapping when FK
    # columns are disabled.
    "child": (
        "{t}.dewey_pos > {c}.dewey_pos "
        "AND {t}.dewey_pos < " + _UPPER.format(x="{c}") + " "
        "AND length({t}.dewey_pos) = length({c}.dewey_pos) + 3"
    ),
    "parent": (
        "{c}.dewey_pos > {t}.dewey_pos "
        "AND {c}.dewey_pos < " + _UPPER.format(x="{t}") + " "
        "AND length({c}.dewey_pos) = length({t}.dewey_pos) + 3"
    ),
}


def axis_names() -> frozenset[str]:
    """Axes with a Table 2 Dewey formulation (the valid
    :class:`~repro.plan.nodes.StructuralCond` axis values)."""
    return frozenset(_AXIS_CONDITIONS)


def sql_condition(axis: str, context_alias: str, target_alias: str) -> str:
    """SQL condition joining ``target_alias`` to ``context_alias`` so the
    target rows stand in the given structural ``axis`` to the context rows.

    :raises KeyError: for an axis with no Dewey formulation (``attribute``).
    """
    template = _AXIS_CONDITIONS[axis]
    return template.format(c=context_alias, t=target_alias)
