"""Encoding and decoding of Dewey vectors as binary strings.

Per Section 4.2 of the paper, a Dewey position ``d(n) = C1 || C2 || ... ||
Ck`` concatenates one component per tree level.  Each component is exactly
3 bytes with the first bit zero, so its value ranges over ``0 ..
0x7FFFFF``.  Because every component starts with a byte ``<= 0x7F``, a
single ``0xFF`` byte appended to an encoding is lexicographically larger
than any possible continuation of that encoding — that is the ``|| 'F'``
upper bound used by the paper's descendant range condition (Lemma 1).
"""

from __future__ import annotations

from repro.errors import DeweyError

#: Size in bytes of one Dewey component.
COMPONENT_BYTES = 3

#: Largest ordinal a 3-byte component with a zero high bit can carry.
MAX_ORDINAL = 0x7FFFFF

#: The byte appended to form the exclusive upper bound of the descendant
#: range (the paper's ``d(n) || 'F'``).
DESCENDANT_SUFFIX = b"\xff"


def encode(vector: tuple[int, ...]) -> bytes:
    """Encode a Dewey vector into its binary string form.

    :param vector: 1-based sibling ordinals from the root down to the node,
        e.g. ``(1, 2, 1)`` for the node ``1.2.1`` of Figure 1.
    :raises DeweyError: on an empty vector or an out-of-range ordinal.
    """
    if not vector:
        raise DeweyError("Dewey vector must have at least one component")
    parts = []
    for ordinal in vector:
        if not 0 <= ordinal <= MAX_ORDINAL:
            raise DeweyError(
                f"Dewey ordinal {ordinal} outside 0..{MAX_ORDINAL:#x}"
            )
        parts.append(ordinal.to_bytes(COMPONENT_BYTES, "big"))
    return b"".join(parts)


def decode(encoded: bytes) -> tuple[int, ...]:
    """Decode a binary Dewey string back into its ordinal vector.

    :raises DeweyError: if the length is not a multiple of the component
        size, or a component has its high bit set.
    """
    if not encoded or len(encoded) % COMPONENT_BYTES != 0:
        raise DeweyError(
            f"encoded length {len(encoded)} is not a positive multiple "
            f"of {COMPONENT_BYTES}"
        )
    ordinals = []
    for offset in range(0, len(encoded), COMPONENT_BYTES):
        component = encoded[offset : offset + COMPONENT_BYTES]
        if component[0] & 0x80:
            raise DeweyError("component high bit set; not a valid encoding")
        ordinals.append(int.from_bytes(component, "big"))
    return tuple(ordinals)


def level_of(encoded: bytes) -> int:
    """Tree level of the encoded node (root element = 1)."""
    if not encoded or len(encoded) % COMPONENT_BYTES != 0:
        raise DeweyError("not a valid Dewey encoding")
    return len(encoded) // COMPONENT_BYTES


def parent_of(encoded: bytes) -> bytes:
    """Encoding of the parent node (drop the last component).

    :raises DeweyError: when called on a root (single-component) encoding.
    """
    if level_of(encoded) < 2:
        raise DeweyError("a root node has no parent")
    return encoded[:-COMPONENT_BYTES]


def descendant_upper_bound(encoded: bytes) -> bytes:
    """The exclusive lexicographic upper bound of ``encoded``'s subtree.

    Every descendant encoding ``d`` satisfies
    ``encoded < d < descendant_upper_bound(encoded)`` (Lemma 1).
    """
    return encoded + DESCENDANT_SUFFIX
