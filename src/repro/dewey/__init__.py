"""Binary Dewey position encoding and structural-relationship predicates.

Implements Section 4.2 of the paper: each node's Dewey vector (the 1-based
ordinals of its ancestors among their element siblings) is encoded as a
binary string of fixed 3-byte components whose high bit is zero.  Plain
bytewise lexicographic comparison of two encodings then decides every
XPath structural axis (Table 2, Lemmas 1 and 2).
"""

from repro.dewey.codec import (
    COMPONENT_BYTES,
    DESCENDANT_SUFFIX,
    MAX_ORDINAL,
    decode,
    descendant_upper_bound,
    encode,
    level_of,
    parent_of,
)
from repro.dewey.relations import (
    Relationship,
    is_ancestor,
    is_descendant,
    is_following,
    is_following_sibling,
    is_preceding,
    is_preceding_sibling,
    relationship,
    sql_condition,
)

__all__ = [
    "COMPONENT_BYTES",
    "DESCENDANT_SUFFIX",
    "MAX_ORDINAL",
    "Relationship",
    "decode",
    "descendant_upper_bound",
    "encode",
    "is_ancestor",
    "is_descendant",
    "is_following",
    "is_following_sibling",
    "is_preceding",
    "is_preceding_sibling",
    "level_of",
    "parent_of",
    "relationship",
    "sql_condition",
]
