"""Rendering of measured-vs-paper comparison tables and shape checks."""

from __future__ import annotations

import math
from typing import Optional

from repro.bench.paper import PaperRow
from repro.bench.runner import BenchResult

#: engine key -> (paper column attribute, printable header)
_COLUMNS = [
    ("ppf", "ppf", "PPF"),
    ("edge_ppf", "edge_ppf", "EdgePPF"),
    ("native", "monetdb", "native(MonetDB)"),
    ("commercial", "commercial", "naive(Commerc.)"),
    ("accel", "accel", "Accel"),
]


def _fmt_seconds(value: Optional[float], error: Optional[str] = None) -> str:
    if error == "N/A":
        return "N/A"
    if error is not None:
        return "ERR"
    if value is None:
        return "N/A"
    if math.isinf(value):
        return "~"
    return f"{value * 1000:.1f}ms" if value < 1 else f"{value:.2f}s"


def format_table(
    title: str,
    results: list[BenchResult],
    paper_rows: Optional[list[PaperRow]] = None,
) -> str:
    """A fixed-width table: measured series, with the paper's series
    interleaved underneath when available."""
    by_key = {(r.qid, r.engine): r for r in results}
    qids = list(dict.fromkeys(r.qid for r in results))
    lines = [title, "=" * len(title)]
    header = f"{'query':<6}{'nodes':>8} " + "".join(
        f"{label:>17}" for _, _, label in _COLUMNS
    )
    lines.append(header)
    paper_by_qid = {row.qid: row for row in (paper_rows or [])}
    for qid in qids:
        counts = [
            by_key[(qid, key)].result_count
            for key, _, _ in _COLUMNS
            if (qid, key) in by_key and by_key[(qid, key)].available
        ]
        count = counts[0] if counts else 0
        cells = []
        for key, _, _ in _COLUMNS:
            result = by_key.get((qid, key))
            if result is None:
                cells.append(f"{'-':>17}")
            else:
                cells.append(f"{_fmt_seconds(result.seconds, result.error):>17}")
        lines.append(f"{qid:<6}{count:>8} " + "".join(cells))
        paper = paper_by_qid.get(qid)
        if paper is not None:
            paper_cells = []
            for _, attr, _ in _COLUMNS:
                value = getattr(paper, attr)
                paper_cells.append(f"{'(' + _fmt_seconds(value) + ')':>17}")
            lines.append(f"{'':<6}{paper.nodes:>8} " + "".join(paper_cells))
    return "\n".join(lines)


def shape_check(
    results: list[BenchResult],
    paper_rows: list[PaperRow],
    tolerance: float = 0.0,
) -> list[str]:
    """Compare the *shape* of the measured table with the paper's.

    For every query where the paper's PPF beats a competitor, check that
    the measured PPF time does not exceed the measured competitor's by
    more than ``tolerance`` (0 = must also win).  Returns a list of
    human-readable deviations (empty = shape reproduced).
    """
    by_key = {(r.qid, r.engine): r for r in results}
    deviations = []
    for paper in paper_rows:
        measured_ppf = by_key.get((paper.qid, "ppf"))
        if measured_ppf is None or not measured_ppf.available:
            continue
        for key, attr, _ in _COLUMNS:
            if key == "ppf":
                continue
            paper_other = getattr(paper, attr)
            measured_other = by_key.get((paper.qid, key))
            if (
                paper_other is None
                or measured_other is None
                or not measured_other.available
            ):
                continue
            if paper.ppf < paper_other:  # the paper's PPF wins here
                allowed = measured_other.seconds * (1.0 + tolerance)
                if measured_ppf.seconds > allowed:
                    deviations.append(
                        f"{paper.qid}: paper has PPF < {key} "
                        f"({paper.ppf:.2f}s vs {paper_other:.2f}s) but "
                        f"measured {measured_ppf.seconds * 1000:.1f}ms vs "
                        f"{measured_other.seconds * 1000:.1f}ms"
                    )
    return deviations
