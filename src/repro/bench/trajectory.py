"""Serving-layer benchmark: one JSON payload for the whole trajectory.

Collects, against a file-backed XMark store,

* per-query wall times, result cardinalities and optimizer plan stats
  (which passes fired, branch/scan/`Paths`-join counts before vs after
  the pass pipeline) for the XPathMark set,
* workload-wide optimizer pass hit counts,
* ``execute_many`` throughput (queries/second) at several pool sizes,
  with the speedup over the serial single-connection run, and
* the bulk-load fast path (:meth:`ShreddedStore.bulk_load`) against the
  equivalent per-document ``load`` loop.

``python benchmarks/run_experiments.py --json BENCH_PR4.json`` writes
the payload; ``pytest -m bench_smoke`` runs a miniature of the same
collection as a structural check.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import statistics
import tempfile
import time
from typing import Callable, Sequence

from repro.bench.runner import run_query, time_engine
from repro.core.engine import PPFEngine
from repro.schema.inference import infer_schema
from repro.serving.pool import ConnectionPool
from repro.storage.database import Database
from repro.storage.schema_aware import ShreddedStore
from repro.workloads.xmark import XMarkConfig, generate_xmark
from repro.workloads.xpathmark import XPATHMARK_QUERIES


def _median_time(fn: Callable[[], object], repeats: int) -> float:
    """Median wall-clock seconds of ``fn`` after one untimed warm-up."""
    fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def collect(
    scale: float = 6.0,
    worker_counts: Sequence[int] = (1, 4, 8),
    repeats: int = 3,
    bulk_docs: int = 8,
    bulk_scale: float = 1.0,
    seed: int = 42,
    workdir: str | None = None,
) -> dict:
    """Run the full serving trajectory and return the JSON payload.

    ``worker_counts`` must start with 1: the first entry is the serial
    baseline the speedups are computed against.  ``workdir`` holds the
    file-backed stores (the pool needs a real file); a temporary
    directory is used — and cleaned up — when it is ``None``.
    """
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            return _collect_in(
                tmp, scale, worker_counts, repeats, bulk_docs,
                bulk_scale, seed,
            )
    return _collect_in(
        workdir, scale, worker_counts, repeats, bulk_docs, bulk_scale, seed
    )


def _collect_in(
    workdir: str,
    scale: float,
    worker_counts: Sequence[int],
    repeats: int,
    bulk_docs: int,
    bulk_scale: float,
    seed: int,
) -> dict:
    queries = XPATHMARK_QUERIES
    document = generate_xmark(XMarkConfig(scale=scale, seed=seed))
    store = ShreddedStore.create(
        Database.open(
            os.path.join(workdir, "serving.db"), check_same_thread=False
        ),
        infer_schema([document]),
    )
    store.load(document)
    store.db.execute("ANALYZE")
    store.db.commit()

    # -- per-query latency + cardinality (result cache off: every run
    #    must actually hit SQLite) ---------------------------------------
    engine = PPFEngine(store, result_cache_size=None)
    per_query = []
    pass_hits: dict[str, int] = {
        name: 0 for name in engine.translator.pass_names
    }
    for query in queries:
        seconds, count = time_engine(engine, query.xpath, repeats=repeats)
        translation = engine.translate(query.xpath)
        fired = translation.fired_passes()
        for name in fired:
            pass_hits[name] = pass_hits.get(name, 0) + 1
        before = translation.plan_stats_before or {}
        after = translation.plan_stats_after or {}
        per_query.append(
            {
                "qid": query.qid,
                "xpath": query.xpath,
                "seconds": round(seconds, 6),
                "nodes": count,
                "plan": {
                    "fired_passes": fired,
                    "branches": [
                        before.get("branches", 0), after.get("branches", 0)
                    ],
                    "scans": [
                        before.get("scans", 0), after.get("scans", 0)
                    ],
                    "paths_joins": [
                        before.get("paths_joins", 0),
                        after.get("paths_joins", 0),
                    ],
                },
            }
        )

    # -- execute_many throughput across pool sizes -----------------------
    xpaths = [query.xpath for query in queries]
    runs = []
    baseline = None
    for workers in worker_counts:
        pool = (
            ConnectionPool.for_store(store, size=workers)
            if workers > 1
            else None
        )
        run_engine = PPFEngine(store, result_cache_size=None, pool=pool)
        try:
            seconds = _median_time(
                lambda: run_engine.execute_many(xpaths, concurrency=workers),
                repeats,
            )
        finally:
            if pool is not None:
                pool.close()
        if baseline is None:
            baseline = seconds
        runs.append(
            {
                "workers": workers,
                "seconds": round(seconds, 6),
                "queries_per_second": round(len(xpaths) / seconds, 2),
                "speedup_vs_serial": round(baseline / seconds, 3),
            }
        )

    # -- bulk-load fast path vs the per-document load loop ---------------
    bulk_documents = [
        generate_xmark(XMarkConfig(scale=bulk_scale, seed=seed + 1 + i))
        for i in range(bulk_docs)
    ]
    schema = infer_schema(bulk_documents)
    loop_store = ShreddedStore.create(
        Database.open(os.path.join(workdir, "loop.db")), schema
    )
    start = time.perf_counter()
    for doc in bulk_documents:
        loop_store.load(doc)
    loop_seconds = time.perf_counter() - start
    bulk_store = ShreddedStore.create(
        Database.open(os.path.join(workdir, "bulk.db")), schema
    )
    start = time.perf_counter()
    bulk_store.bulk_load(bulk_documents)
    bulk_seconds = time.perf_counter() - start
    if bulk_store.relation_counts() != loop_store.relation_counts():
        raise AssertionError("bulk_load and load loop diverged")

    return {
        "meta": {
            "workload": "xmark-small",
            "scale": scale,
            "elements": document.element_count(),
            "query_count": len(queries),
            "repeats": repeats,
            "timing": "median of warm in-process runs",
            "python": f"{platform.python_implementation()} "
            f"{platform.python_version()}",
            "cpus": os.cpu_count(),
        },
        "queries": per_query,
        "optimizer": {
            "passes": list(engine.translator.pass_names),
            "note": "hit counts over the workload; per-query "
            "before/after plan stats under queries[].plan",
            "pass_hits": pass_hits,
        },
        "serving_throughput": {
            "workload_queries": len(xpaths),
            "note": "thread-level speedup is bounded by the CPUs "
            "available to the process (see meta.cpus)",
            "runs": runs,
        },
        "bulk_load": {
            "documents": bulk_docs,
            "elements": sum(d.element_count() for d in bulk_documents),
            "load_loop_seconds": round(loop_seconds, 6),
            "bulk_seconds": round(bulk_seconds, 6),
            "speedup": round(loop_seconds / bulk_seconds, 3),
        },
    }


def collect_costed(
    scale: float = 6.0,
    repeats: int = 21,
    seed: int = 42,
    workdir: str | None = None,
) -> dict:
    """Heuristic vs cost-based optimizer pipeline on the XMark workload.

    One store, statistics collected at shred time; two engines over it —
    the heuristic pipeline (every non-costed pass) and the full costed
    pipeline.  Per query: median latency under both, which costed passes
    fired, and the estimator's row count against the actual result
    cardinality (q-error).  Returned as the ``optimizer.costed`` section
    of the benchmark JSON.
    """
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            return _collect_costed_in(tmp, scale, repeats, seed)
    return _collect_costed_in(workdir, scale, repeats, seed)


def _time_interleaved(
    first: PPFEngine, second: PPFEngine, xpath: str, repeats: int
) -> tuple[float, int, float, int]:
    """Best-of-``repeats`` per-execution seconds for two engines.

    Each sample times a small *batch* of executions (amortising clock
    and scheduler jitter that dwarfs a sub-millisecond query), rounds
    are interleaved (rather than timing one engine's block after the
    other) to cancel clock-speed and page-cache drift, and the round's
    leader alternates so neither engine systematically pays the cold
    half of a round.  The reducer is the *minimum*, not the median:
    timing noise is one-sided (it only ever adds time), and two
    engines running byte-identical SQL must tie.
    """
    batch = 5
    count_first = run_query(first, xpath)
    count_second = run_query(second, xpath)
    samples_first: list[float] = []
    samples_second: list[float] = []
    gc.collect()
    gc.disable()
    try:
        for round_index in range(repeats):
            pair = [
                (first, samples_first),
                (second, samples_second),
            ]
            if round_index % 2:
                pair.reverse()
            for engine, samples in pair:
                start = time.perf_counter()
                for _ in range(batch):
                    run_query(engine, xpath)
                samples.append((time.perf_counter() - start) / batch)
    finally:
        gc.enable()
    return (
        min(samples_first),
        count_first,
        min(samples_second),
        count_second,
    )


def _collect_costed_in(
    workdir: str, scale: float, repeats: int, seed: int
) -> dict:
    from repro.plan.passes import DEFAULT_PASS_NAMES
    from repro.workloads.xpathmark import XPATHMARK_A_QUERIES

    queries = list(XPATHMARK_QUERIES) + list(XPATHMARK_A_QUERIES)
    document = generate_xmark(XMarkConfig(scale=scale, seed=seed))
    store = ShreddedStore.create(
        Database.open(os.path.join(workdir, "costed.db")),
        infer_schema([document]),
    )
    store.bulk_load([document])  # collects statistics at shred time
    store.db.execute("ANALYZE")
    store.db.commit()

    heuristic_passes = tuple(
        name
        for name in DEFAULT_PASS_NAMES
        if not name.startswith("costed-")
    )
    heuristic = PPFEngine(
        store, passes=heuristic_passes, result_cache_size=None
    )
    costed = PPFEngine(store, result_cache_size=None)

    per_query = []
    totals = {"heuristic": 0.0, "costed": 0.0}
    join_order_totals = {"heuristic": 0.0, "costed": 0.0}
    join_order_qids = []
    q_errors = []
    for query in queries:
        heuristic_seconds, count, costed_seconds, costed_count = (
            _time_interleaved(heuristic, costed, query.xpath, repeats)
        )
        if count != costed_count:
            raise AssertionError(
                f"{query.qid}: costed pipeline changed the result "
                f"({costed_count} rows vs {count})"
            )
        translation = costed.translate(query.xpath)
        fired = [
            name
            for name in translation.fired_passes()
            if name.startswith("costed-")
        ]
        estimated = translation.estimated_rows
        q_error = None
        if estimated is not None:
            q_error = max(estimated, 1.0) / max(float(count), 1.0)
            q_error = round(max(q_error, 1.0 / q_error), 3)
            q_errors.append(q_error)
        totals["heuristic"] += heuristic_seconds
        totals["costed"] += costed_seconds
        if "costed-join-order" in fired:
            join_order_qids.append(query.qid)
            join_order_totals["heuristic"] += heuristic_seconds
            join_order_totals["costed"] += costed_seconds
        per_query.append(
            {
                "qid": query.qid,
                "xpath": query.xpath,
                "heuristic_seconds": round(heuristic_seconds, 6),
                "costed_seconds": round(costed_seconds, 6),
                "speedup": round(
                    heuristic_seconds / max(costed_seconds, 1e-9), 3
                ),
                "fired_costed_passes": fired,
                "estimated_rows": (
                    round(estimated, 3) if estimated is not None else None
                ),
                "actual_rows": count,
                "q_error": q_error,
            }
        )

    return {
        "note": "same store and statistics for both pipelines; the "
        "heuristic pipeline drops the three costed-* passes",
        "workload": "xpathmark + xpathmark-a",
        "scale": scale,
        "repeats": repeats,
        "heuristic_passes": list(heuristic_passes),
        "queries": per_query,
        "summary": {
            "heuristic_total_seconds": round(totals["heuristic"], 6),
            "costed_total_seconds": round(totals["costed"], 6),
            "overall_speedup": round(
                totals["heuristic"] / max(totals["costed"], 1e-9), 3
            ),
            "join_order_sensitive_qids": join_order_qids,
            "join_order_speedup": (
                round(
                    join_order_totals["heuristic"]
                    / max(join_order_totals["costed"], 1e-9),
                    3,
                )
                if join_order_qids
                else None
            ),
            "median_q_error": (
                round(statistics.median(q_errors), 3) if q_errors else None
            ),
            "max_q_error": round(max(q_errors), 3) if q_errors else None,
        },
    }


def write_json(payload: dict, path: str) -> None:
    """Write ``payload`` as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")


def _percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of ``samples`` (fraction in [0, 1])."""
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def collect_sharded(
    scale: float = 6.0,
    shards: int = 4,
    docs: int = 8,
    repeats: int = 3,
    seed: int = 42,
    latency_rounds: int = 3,
    slow_seconds: float = 0.05,
    workdir: str | None = None,
) -> dict:
    """Serial single-store vs multi-process sharded serving.

    Loads ``docs`` XMark documents (each at ``scale``) into one
    single-file store and one ``shards``-way sharded store, then
    measures

    * ``execute_many`` wall time for the XPathMark workload — serial
      single connection vs the supervised scatter-gather fleet, and
    * per-query latency p50/p99 with one slow shard replica, with and
      without hedged requests (the hedge dodges the slow replica).

    Returned under the ``"sharded_serving"`` key by the PR6 collection;
    appended to the BENCH_PR4 trajectory by ``run_experiments --json``.
    """
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            return _collect_sharded_in(
                tmp, scale, shards, docs, repeats, seed,
                latency_rounds, slow_seconds,
            )
    return _collect_sharded_in(
        workdir, scale, shards, docs, repeats, seed,
        latency_rounds, slow_seconds,
    )


def _collect_sharded_in(
    workdir: str,
    scale: float,
    shards: int,
    docs: int,
    repeats: int,
    seed: int,
    latency_rounds: int,
    slow_seconds: float,
) -> dict:
    from repro.resilience.faults import WorkerFaultPlan
    from repro.serving.scatter import ServingConfig, ShardedEngine
    from repro.serving.shards import ShardedStore

    documents = []
    for i in range(docs):
        document = generate_xmark(XMarkConfig(scale=scale, seed=seed + i))
        document.name = f"xmark-{i}.xml"
        documents.append(document)
    schema = infer_schema(documents)
    xpaths = [query.xpath for query in XPATHMARK_QUERIES]

    serial_store = ShreddedStore.create(
        Database.open(
            os.path.join(workdir, "serial.db"), check_same_thread=False
        ),
        schema,
    )
    serial_store.bulk_load(documents)
    serial_store.db.execute("ANALYZE")
    serial_store.db.commit()
    serial_engine = PPFEngine(serial_store, result_cache_size=None)
    serial_seconds = _median_time(
        lambda: serial_engine.execute_many(xpaths, concurrency=1), repeats
    )

    sharded_store = ShardedStore.create(
        os.path.join(workdir, "sharded"), schema, shards=shards
    )
    sharded_store.bulk_load(documents)
    sharded_store.analyze()
    config = ServingConfig(deadline=60.0, result_cache_size=None)

    with sharded_store, ShardedEngine.serve(
        sharded_store, config=config, replicas=1
    ) as engine:
        sharded_seconds = _median_time(
            lambda: engine.execute_many(xpaths, concurrency=shards),
            repeats,
        )

    # -- tail latency with one slow shard replica ------------------------
    def latency_run(plan, serving_config, replicas=2):
        samples, hedges = [], 0
        with ShardedEngine.serve(
            ShardedStore.open(os.path.join(workdir, "sharded")),
            config=serving_config,
            replicas=replicas,
            fault_plan=plan,
        ) as slow_engine:
            for _ in range(latency_rounds):
                for xpath in xpaths:
                    start = time.perf_counter()
                    result = slow_engine.execute(xpath)
                    samples.append(time.perf_counter() - start)
                    if not result.complete:
                        raise AssertionError("slow shard must not fail")
            hedges = slow_engine.stats["hedges"]
        return samples, hedges

    def slow_plan():
        return WorkerFaultPlan().script(
            "slow", shard=0, replica=0, generation=None,
            times=10**9, seconds=slow_seconds,
        )

    hedged, hedge_count = latency_run(
        slow_plan(), ServingConfig(
            deadline=60.0, hedge_delay=slow_seconds / 4,
            result_cache_size=None,
        ),
    )
    unhedged, _ = latency_run(
        slow_plan(), ServingConfig(
            deadline=60.0, hedge_delay=10 * slow_seconds,
            result_cache_size=None,
        ),
    )

    total_elements = sum(d.element_count() for d in documents)
    return {
        "meta": {
            "workload": "xmark-sharded",
            "scale": scale,
            "documents": docs,
            "elements": total_elements,
            "shards": shards,
            "query_count": len(xpaths),
            "repeats": repeats,
            "python": f"{platform.python_implementation()} "
            f"{platform.python_version()}",
            "cpus": os.cpu_count(),
        },
        "throughput": {
            "serial_seconds": round(serial_seconds, 6),
            "sharded_seconds": round(sharded_seconds, 6),
            "serial_qps": round(len(xpaths) / serial_seconds, 2),
            "sharded_qps": round(len(xpaths) / sharded_seconds, 2),
            "speedup_vs_serial": round(serial_seconds / sharded_seconds, 3),
        },
        "slow_shard_latency": {
            "note": "one replica of shard 0 delays every request by "
            "slow_seconds; hedged requests duplicate to the healthy "
            "replica after hedge_delay",
            "slow_seconds": slow_seconds,
            "samples_per_mode": latency_rounds * len(xpaths),
            "hedging": {
                "p50_seconds": round(_percentile(hedged, 0.50), 6),
                "p99_seconds": round(_percentile(hedged, 0.99), 6),
                "hedges": hedge_count,
            },
            "no_hedging": {
                "p50_seconds": round(_percentile(unhedged, 0.50), 6),
                "p99_seconds": round(_percentile(unhedged, 0.99), 6),
            },
        },
    }


def collect_async(
    scale: float = 2.0,
    shards: int = 4,
    docs: int = 8,
    total_queries: int = 1000,
    max_inflight: int = 32,
    repeats: int = 3,
    seed: int = 42,
    workdir: str | None = None,
) -> dict:
    """Thread-blocking client vs the asyncio front door, same fleet.

    Loads ``docs`` XMark documents into a ``shards``-way sharded store,
    then pushes the same ``total_queries``-query workload (the
    XPathMark set, cycled) through

    * the thread-blocking client shape: ``max_inflight`` threads, each
      parking in a blocking ``engine.execute`` per query (every query
      pays its own scatter round-trip), and
    * a single-threaded asyncio client that ``gather``s every query at
      once against :class:`~repro.serving.frontdoor.AsyncShardedEngine`
      with awaitable backpressure (``admission_timeout=None``), so at
      most ``max_inflight`` queries are in flight while the rest park
      on the admission semaphore — concurrent queries coalesce into
      one ``submit_batch`` per shard per tick.

    ``execute_many`` (the whole workload pipelined up front in one
    batch per shard) is reported too, as the upper bound batching can
    reach when the full query list is known in advance.

    Peak heap (tracemalloc) is recorded during the async run: with
    every query submitted up front, memory must stay bounded by the
    admission window rather than the workload size.  Returned as the
    ``async_frontdoor`` section of the benchmark JSON.
    """
    if workdir is None:
        with tempfile.TemporaryDirectory(prefix="repro-bench-") as tmp:
            return _collect_async_in(
                tmp, scale, shards, docs, total_queries, max_inflight,
                repeats, seed,
            )
    return _collect_async_in(
        workdir, scale, shards, docs, total_queries, max_inflight,
        repeats, seed,
    )


def _collect_async_in(
    workdir: str,
    scale: float,
    shards: int,
    docs: int,
    total_queries: int,
    max_inflight: int,
    repeats: int,
    seed: int,
) -> dict:
    import asyncio
    import tracemalloc
    from concurrent.futures import ThreadPoolExecutor

    from repro.serving.frontdoor import AsyncShardedEngine
    from repro.serving.scatter import ServingConfig, ShardedEngine
    from repro.serving.shards import ShardedStore

    documents = []
    for i in range(docs):
        document = generate_xmark(XMarkConfig(scale=scale, seed=seed + i))
        document.name = f"xmark-{i}.xml"
        documents.append(document)
    schema = infer_schema(documents)
    base = [query.xpath for query in XPATHMARK_QUERIES]
    workload = [base[i % len(base)] for i in range(total_queries)]

    store = ShardedStore.create(
        os.path.join(workdir, "async-sharded"), schema, shards=shards
    )
    store.bulk_load(documents)
    store.analyze()
    config = ServingConfig(
        deadline=120.0,
        result_cache_size=None,
        max_inflight=max_inflight,
        admission_timeout=None,
    )

    with store, ShardedEngine.serve(
        store, config=config, replicas=1
    ) as engine:

        def thread_blocking_run():
            with ThreadPoolExecutor(max_workers=max_inflight) as pool:
                results = list(pool.map(engine.execute, workload))
            incomplete = sum(1 for r in results if not r.complete)
            if incomplete:
                raise AssertionError(
                    f"{incomplete} threaded results incomplete"
                )

        sync_seconds = _median_time(thread_blocking_run, repeats)
        pipelined_seconds = _median_time(
            lambda: engine.execute_many(workload, concurrency=shards),
            repeats,
        )

        async def gather_all():
            front = AsyncShardedEngine(engine)
            results = await asyncio.gather(
                *(front.execute(xpath) for xpath in workload)
            )
            incomplete = sum(1 for r in results if not r.complete)
            if incomplete:
                raise AssertionError(
                    f"{incomplete} async results incomplete"
                )

        def async_run():
            asyncio.run(gather_all())

        async_seconds = _median_time(async_run, repeats)
        tracemalloc.start()
        async_run()
        _, peak_bytes = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        batches = engine.stats.get("queries", 0)

    return {
        "meta": {
            "workload": "xmark-async-frontdoor",
            "scale": scale,
            "documents": docs,
            "elements": sum(d.element_count() for d in documents),
            "shards": shards,
            "total_queries": total_queries,
            "max_inflight": max_inflight,
            "repeats": repeats,
            "python": f"{platform.python_implementation()} "
            f"{platform.python_version()}",
            "cpus": os.cpu_count(),
        },
        "note": "same fleet for all three clients; the async client "
        "submits every query in one gather on one thread and relies "
        "on awaitable admission for backpressure",
        "sync_blocking": {
            "client_threads": max_inflight,
            "seconds": round(sync_seconds, 6),
            "queries_per_second": round(
                total_queries / sync_seconds, 2
            ),
        },
        "pipelined_execute_many": {
            "seconds": round(pipelined_seconds, 6),
            "queries_per_second": round(
                total_queries / pipelined_seconds, 2
            ),
        },
        "async_frontdoor": {
            "seconds": round(async_seconds, 6),
            "queries_per_second": round(
                total_queries / async_seconds, 2
            ),
            "speedup_vs_sync": round(sync_seconds / async_seconds, 3),
            "peak_traced_mib": round(peak_bytes / (1024 * 1024), 2),
        },
        "queries_observed": batches,
    }
