"""The numbers the paper reports (Appendix C) as data.

Times are seconds on the authors' testbed (Oracle 10g / MonetDB on a
2005-era Pentium 4); ``None`` marks N/A (the commercial RDBMS supported
only Q23, Q24 and Q-A) and ``math.inf`` the DBLP accelerator timeout
(printed ``~`` in the paper).  The bench harness prints these series next
to the measured ones and checks the *shape* — who wins and by what
rough factor — not absolute milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class PaperRow:
    """One query row of an Appendix C table."""

    qid: str
    nodes: int
    ppf: float
    edge_ppf: float
    monetdb: float
    commercial: Optional[float]
    accel: Optional[float]


#: Appendix C, table 1 — the 12 MB XMark document.
PAPER_XMARK_SMALL: list[PaperRow] = [
    PaperRow("Q1", 2175, 0.06, 0.49, 0.85, None, 0.68),
    PaperRow("Q2", 361, 0.09, 0.15, 0.54, None, 0.31),
    PaperRow("Q3", 7014, 0.06, 1.11, 0.57, None, 0.98),
    PaperRow("Q4", 3514, 0.21, 0.24, 0.46, None, 8.86),
    PaperRow("Q5", 1100, 0.07, 0.20, 1.01, None, 0.83),
    PaperRow("Q6", 2778, 0.18, 2.80, 0.76, None, 0.20),
    PaperRow("Q7", 883, 0.12, 1.20, 0.46, None, 0.18),
    PaperRow("Q9", 3, 0.11, 0.67, 0.51, None, 0.90),
    PaperRow("Q10", 2174, 0.09, 0.52, 0.59, None, 1.36),
    PaperRow("Q11", 1, 0.17, 0.58, 0.65, None, 1.24),
    PaperRow("Q12", 227, 0.06, 0.76, 0.71, None, 0.71),
    PaperRow("Q13", 6025, 0.22, 1.15, 1.10, None, 0.96),
    PaperRow("Q21", 1, 0.09, 0.40, 0.60, None, 1.53),
    PaperRow("Q22", 1100, 0.27, 0.31, 0.57, None, 0.57),
    PaperRow("Q23", 952, 0.24, 0.54, 0.54, 0.42, 1.48),
    PaperRow("Q24", 1304, 0.09, 0.82, 0.56, 0.53, 0.59),
    PaperRow("QA", 8, 0.18, 0.42, 1.40, 1.48, 0.96),
]

#: Appendix C, table 1 — the 113 MB XMark document.
PAPER_XMARK_LARGE: list[PaperRow] = [
    PaperRow("Q1", 21750, 0.48, 1.26, 0.85, None, 3.40),
    PaperRow("Q2", 4127, 0.22, 0.69, 1.125, None, 3.04),
    PaperRow("Q3", 69969, 0.79, 1.52, 0.54, None, 6.84),
    PaperRow("Q4", 34879, 0.41, 1.24, 0.73, None, 4.34),
    PaperRow("Q5", 11000, 0.14, 0.36, 21.28, None, 2.57),
    PaperRow("Q6", 27878, 1.35, 22.10, 0.76, None, 4.60),
    PaperRow("Q7", 8884, 0.62, 2.65, 0.93, None, 3.70),
    PaperRow("Q9", 8, 0.20, 0.92, 0.78, None, 3.71),
    PaperRow("Q10", 21749, 0.35, 0.68, 1.42, None, 25.18),
    PaperRow("Q11", 0, 0.42, 0.65, 4.43, None, 14.17),
    PaperRow("Q12", 2210, 0.11, 3.91, 3.20, None, 5.29),
    PaperRow("Q13", 60250, 0.87, 7.11, 8.17, None, 6.53),
    PaperRow("Q21", 1, 0.23, 0.75, 0.93, None, 14.15),
    PaperRow("Q22", 11000, 0.70, 0.85, 0.79, None, 2.22),
    PaperRow("Q23", 9506, 0.50, 2.73, 0.73, 1.42, 3.69),
    PaperRow("Q24", 12762, 0.20, 1.39, 1.04, 0.32, 3.42),
    PaperRow("QA", 64, 1.39, 8.67, 3.20, 3.03, 11.20),
]

#: Appendix C, table 2 — the 130 MB DBLP database ("~" = did not finish).
PAPER_DBLP: list[PaperRow] = [
    PaperRow("QD1", 2, 3.11, 7.60, 22.93, None, 18.53),
    PaperRow("QD2", 465, 3.09, 53.71, 1.86, None, 114.88),
    PaperRow("QD3", 577, 0.09, 1.89, 1.18, None, 15.97),
    PaperRow("QD4", 1, 0.07, 0.16, 8.17, None, 8.15),
    PaperRow("QD5", 12178, 4.58, 55.62, 5.18, None, math.inf),
]


def paper_row(table: list[PaperRow], qid: str) -> PaperRow:
    """Look up a query's paper row.

    :raises KeyError: for unknown ids.
    """
    for row in table:
        if row.qid == qid:
            return row
    raise KeyError(f"no paper row for {qid!r}")
