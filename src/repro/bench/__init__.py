"""Benchmark harness reproducing the paper's evaluation (Section 5).

* :mod:`repro.bench.paper`  — the numbers the paper reports (Appendix C),
* :mod:`repro.bench.runner` — workload setup + timing loops,
* :mod:`repro.bench.report` — table rendering comparing measured series
  against the paper's.
"""

from repro.bench.paper import (
    PAPER_DBLP,
    PAPER_XMARK_LARGE,
    PAPER_XMARK_SMALL,
    PaperRow,
)
from repro.bench.runner import (
    BenchResult,
    WorkloadBundle,
    build_dblp_bundle,
    build_xmark_bundle,
    run_query,
    time_engine,
)
from repro.bench.report import format_table, shape_check

__all__ = [
    "BenchResult",
    "PAPER_DBLP",
    "PAPER_XMARK_LARGE",
    "PAPER_XMARK_SMALL",
    "PaperRow",
    "WorkloadBundle",
    "build_dblp_bundle",
    "build_xmark_bundle",
    "format_table",
    "run_query",
    "shape_check",
    "time_engine",
]
