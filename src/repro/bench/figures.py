"""ASCII bar-chart rendering of benchmark comparisons.

The paper's Figures 3 and 4 are grouped bar charts of per-query times;
:func:`bar_chart` renders the measured equivalent in a terminal, one
group per query, one bar per engine, log-squashed so the multi-order-of-
magnitude spreads the comparison produces stay readable.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.bench.runner import BenchResult

#: glyph per engine column, in display order.
_DEFAULT_LABELS = {
    "ppf": "PPF      ",
    "edge_ppf": "EdgePPF  ",
    "native": "native   ",
    "commercial": "naive    ",
    "accel": "accel    ",
}


def _bar(seconds: float, smallest: float, width: int) -> str:
    """Length grows with log10(time/smallest): equal times → 1 cell, each
    10x → ``width / 4`` more cells (clamped)."""
    if seconds <= 0:
        return ""
    ratio = max(seconds / smallest, 1.0)
    cells = 1 + int(round(math.log10(ratio) * (width / 4)))
    return "#" * min(cells, width)


def bar_chart(
    title: str,
    results: Sequence[BenchResult],
    engine_order: Optional[Sequence[str]] = None,
    width: int = 40,
) -> str:
    """Render one grouped bar chart.

    :param results: measured results (N/A rows are shown as ``n/a``).
    :param engine_order: engines to draw, in order; defaults to the
        paper's column order restricted to engines present.
    :param width: maximum bar width in characters.
    """
    by_key = {(r.qid, r.engine): r for r in results}
    qids = list(dict.fromkeys(r.qid for r in results))
    engines = list(engine_order) if engine_order else [
        e for e in _DEFAULT_LABELS if any(r.engine == e for r in results)
    ]
    available = [
        r.seconds
        for r in results
        if r.available and r.engine in engines and r.seconds > 0
    ]
    if not available:
        return f"{title}\n(no data)"
    smallest = min(available)
    lines = [title, "=" * len(title)]
    lines.append(
        f"(each '#' ≈ a quarter decade above the fastest measurement, "
        f"{smallest * 1000:.2f}ms)"
    )
    for qid in qids:
        lines.append(qid)
        for engine in engines:
            result = by_key.get((qid, engine))
            label = _DEFAULT_LABELS.get(engine, f"{engine:<9}")
            if result is None or not result.available:
                lines.append(f"  {label}| n/a")
                continue
            bar = _bar(result.seconds, smallest, width)
            lines.append(
                f"  {label}|{bar} {result.seconds * 1000:.2f}ms"
            )
    return "\n".join(lines)
