"""Workload setup and timing loops for the reproduced experiments.

A :class:`WorkloadBundle` owns one generated document plus every store
and engine the comparison needs; :func:`time_engine` measures a query the
way the paper did (repeated runs, averaged), except warm in-process
instead of cold-cache (see DESIGN.md, substitutions).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.baselines import AccelEngine, NaiveEngine, NativeEngine
from repro.core.engine import EdgePPFEngine, PPFEngine
from repro.schema.inference import infer_schema
from repro.storage import AccelStore, Database, EdgeStore, ShreddedStore
from repro.workloads.dblp import DBLPConfig, generate_dblp
from repro.workloads.xmark import XMarkConfig, generate_xmark
from repro.xmltree.nodes import Document

#: Engine keys used across tables (order = paper column order).
ENGINE_ORDER = ["ppf", "edge_ppf", "native", "commercial", "accel"]


@dataclass
class WorkloadBundle:
    """One document shredded into every store, with all engines built."""

    document: Document
    store: ShreddedStore
    edge_store: EdgeStore
    accel_store: AccelStore
    engines: dict = field(default_factory=dict)

    @classmethod
    def build(cls, document: Document) -> "WorkloadBundle":
        """Shred ``document`` into all three stores and build every
        engine of the comparison."""
        schema = infer_schema([document])
        store = ShreddedStore.create(Database.memory(), schema)
        store.load(document)
        edge_store = EdgeStore.create(Database.memory())
        edge_store.load(document)
        accel_store = AccelStore.create(Database.memory())
        accel_store.load(document)
        for loaded in (store, edge_store, accel_store):
            loaded.db.execute("ANALYZE")
        bundle = cls(document, store, edge_store, accel_store)
        bundle.engines = {
            # The paper's system.
            "ppf": PPFEngine(store),
            # Figure 3 / Figure 4 competitor: same algorithm, Edge mapping.
            "edge_ppf": EdgePPFEngine(edge_store),
            # MonetDB/XQuery stand-in (see DESIGN.md).
            "native": NativeEngine(document),
            # Commercial built-in XPath stand-in (reported for Q23/Q24/QA).
            "commercial": NaiveEngine(store),
            # XPath Accelerator implementation.
            "accel": AccelEngine(accel_store),
        }
        return bundle

    def element_count(self) -> int:
        """Element count of the bundled document."""
        return self.document.element_count()


def build_xmark_bundle(scale: float = 1.0, seed: int = 42) -> WorkloadBundle:
    """Generate and shred an XMark-like document at ``scale``."""
    return WorkloadBundle.build(
        generate_xmark(XMarkConfig(scale=scale, seed=seed))
    )


def build_dblp_bundle(scale: float = 1.0, seed: int = 7) -> WorkloadBundle:
    """Generate and shred a DBLP-like document at ``scale``."""
    return WorkloadBundle.build(generate_dblp(DBLPConfig(scale=scale, seed=seed)))


@dataclass
class BenchResult:
    """Measured outcome of one (engine, query) pair."""

    qid: str
    engine: str
    seconds: float
    result_count: int
    error: Optional[str] = None

    @property
    def available(self) -> bool:
        """True when the measurement succeeded (not N/A or an error)."""
        return self.error is None


def run_query(engine, xpath: str) -> int:
    """Execute once; returns the result cardinality."""
    result = engine.execute(xpath)
    return len(result)


def time_engine(
    engine,
    xpath: str,
    repeats: int = 3,
    clock: Callable[[], float] = time.perf_counter,
    warmup: bool = True,
) -> tuple[float, int]:
    """Median wall-clock seconds over ``repeats`` runs, plus cardinality.

    The paper averaged 5 cold-cache runs; we take the median of warm runs
    after one untimed warm-up (shape, not absolute numbers — DESIGN.md).
    """
    if warmup:
        run_query(engine, xpath)
    count = 0
    samples = []
    for _ in range(repeats):
        start = clock()
        count = run_query(engine, xpath)
        samples.append(clock() - start)
    return statistics.median(samples), count


def measure(
    bundle: WorkloadBundle,
    queries,
    engine_names: Optional[list[str]] = None,
    repeats: int = 3,
    skip: Optional[dict] = None,
) -> list[BenchResult]:
    """Measure every (query, engine) pair.

    :param skip: ``{engine_name: set of qids}`` marked N/A (mirrors the
        paper's commercial column).
    """
    engine_names = engine_names or list(bundle.engines)
    skip = skip or {}
    results = []
    for query in queries:
        for name in engine_names:
            if query.qid in skip.get(name, ()):  # reported N/A
                results.append(BenchResult(query.qid, name, 0.0, 0, "N/A"))
                continue
            engine = bundle.engines[name]
            try:
                seconds, count = time_engine(engine, query.xpath, repeats)
                results.append(
                    BenchResult(query.qid, name, seconds, count)
                )
            except Exception as exc:  # pragma: no cover - engine gaps
                results.append(
                    BenchResult(
                        query.qid, name, 0.0, 0,
                        f"{type(exc).__name__}: {exc}",
                    )
                )
    return results
