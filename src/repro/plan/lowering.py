"""Lowering: logical plan → SQL statement AST, through a dialect.

This is the only place where plan nodes turn into SQL text fragments.
Everything backend-specific — regex call shape, literal quoting, Dewey
comparisons, index hints — is delegated to the
:class:`~repro.sqlgen.dialect.AnsiDialect` passed in, so a plan lowers
unchanged against any dialect.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.core.pathregex import compile_pattern
from repro.plan.nodes import (
    AggregateCountCond,
    AndCond,
    DocEqCond,
    ExistsCond,
    FalseCond,
    LevelCond,
    LogicalSelect,
    NameFilterCond,
    NotCond,
    OrCond,
    PathFilterCond,
    PathsLinkCond,
    PlanCond,
    PlanUnion,
    QueryPlan,
    RawCond,
    StructuralCond,
    TrueCond,
)
from repro.sqlgen.ast import (
    And,
    Condition,
    Exists,
    Not,
    Or,
    Raw,
    SelectStatement,
    UnionStatement,
)
from repro.sqlgen.dialect import DEFAULT_DIALECT, AnsiDialect
from repro.sqlgen.render import render_statement


def lower_condition(
    condition: PlanCond, dialect: AnsiDialect
) -> Condition:
    """Render one logical condition to a SQL AST condition."""
    if isinstance(condition, TrueCond):
        return Raw("1=1")
    if isinstance(condition, FalseCond):
        return Raw("1=0")
    if isinstance(condition, RawCond):
        return Raw(condition.sql)
    if isinstance(condition, AndCond):
        conjunction = And()
        for part in condition.parts:
            conjunction.add(lower_condition(part, dialect))
        return conjunction
    if isinstance(condition, OrCond):
        disjunction = Or()
        for part in condition.parts:
            disjunction.add(lower_condition(part, dialect))
        return disjunction
    if isinstance(condition, NotCond):
        return Not(lower_condition(condition.operand, dialect))
    if isinstance(condition, ExistsCond):
        return Exists(lower_select(condition.subplan, dialect))
    if isinstance(condition, PathFilterCond):
        expression = f"{condition.paths_alias}.path"
        if condition.mode == "equality":
            assert condition.literal is not None
            return Raw(dialect.path_equality(expression, condition.literal))
        if condition.mode == "in":
            assert condition.literals
            return Raw(
                dialect.path_membership(expression, condition.literals)
            )
        pattern = compile_pattern(
            list(condition.pattern), condition.anchored
        )
        return Raw(dialect.regexp_match(expression, pattern))
    if isinstance(condition, PathsLinkCond):
        return Raw(
            f"{condition.owner_alias}.path_id = {condition.paths_alias}.id"
        )
    if isinstance(condition, NameFilterCond):
        column = f"{condition.alias}.{condition.column}"
        if len(condition.names) == 1:
            return Raw(
                f"{column} = {dialect.string_literal(condition.names[0])}"
            )
        rendered = ", ".join(
            dialect.string_literal(n) for n in condition.names
        )
        return Raw(f"{column} IN ({rendered})")
    if isinstance(condition, StructuralCond):
        return Raw(
            dialect.dewey_axis_condition(
                condition.axis,
                condition.context_alias,
                condition.target_alias,
            )
        )
    if isinstance(condition, DocEqCond):
        return Raw(
            dialect.doc_equality(condition.left_alias, condition.right_alias)
        )
    if isinstance(condition, LevelCond):
        level = dialect.dewey_level(condition.alias)
        if condition.base_alias is None:
            return Raw(f"{level} {condition.sign} {condition.offset}")
        base = dialect.dewey_level(condition.base_alias)
        op = "-" if condition.negative else "+"
        return Raw(f"{level} {condition.sign} {base} {op} {condition.offset}")
    if isinstance(condition, AggregateCountCond):
        counts = [
            "(" + render_statement(lower_select(sub, dialect)) + ")"
            for sub in condition.subplans
        ]
        total = " + ".join(counts) if counts else "0"
        if condition.offset:
            total = f"{total} + {condition.offset}"
        value = dialect.number_literal(condition.value)
        return Raw(f"({total}) {condition.op} {value}")
    raise TypeError(f"unknown plan condition {condition!r}")


def lower_select(
    select: LogicalSelect, dialect: AnsiDialect
) -> SelectStatement:
    """Render one logical select (branch or sub-select body)."""
    statement = SelectStatement(
        columns=list(select.columns),
        distinct=select.distinct,
        order_by=list(select.order_by),
    )
    for scan in select.scans:
        statement.add_table(scan.table, scan.alias)
    for part in select.where.parts:
        statement.where.add(lower_condition(part, dialect))
    return statement


def lower_plan(
    plan: QueryPlan, dialect: Optional[AnsiDialect] = None
) -> Union[SelectStatement, UnionStatement, None]:
    """Render a whole plan; ``None`` for statically empty plans."""
    if dialect is None:
        dialect = DEFAULT_DIALECT
    if plan.root is None:
        return None
    if isinstance(plan.root, PlanUnion):
        branches = []
        for branch in plan.root.branches:
            statement = lower_select(branch, dialect)
            # SQLite rejects ORDER BY on individual UNION arms; the
            # union-level ordering is the only one that matters.
            statement.order_by = []
            branches.append(statement)
        return UnionStatement(
            branches=branches, order_by=list(plan.root.order_by)
        )
    return lower_select(plan.root, dialect)
