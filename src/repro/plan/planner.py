"""XPath → logical plan (paper Algorithm 1 + Sections 4.3–4.4).

The planner walks the backbone's PPFs in order, gradually building a
:class:`~repro.plan.nodes.LogicalSelect` per *branch*.  A prominent step
that maps to several relations forks the branch — the paper's *SQL
splitting* (Section 4.4) — producing a :class:`~repro.plan.nodes.
PlanUnion`; inside predicates the same fork becomes a disjunction of
``EXISTS`` sub-plans (Table 6).

The planner follows Algorithm 1 *literally*: every forward PPF joins its
prominent relation to `Paths` with a :class:`~repro.plan.nodes.
PathFilterCond` over the maximal forward path, backward PPFs put the
(reversed) pattern on the previous fragment's path, and order-axis PPFs
filter the path's last label.  Deciding that a filter is redundant (the
Section 4.5 marking) is *not* the planner's job — that is the
``paths-join-elimination`` optimizer pass.
"""

from __future__ import annotations

import copy
import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence, Union

from repro.core.fragments import (
    PPF,
    PPFKind,
    SplitBackbone,
    split_backbone,
)
from repro.core.pathregex import (
    PatternStep,
    backward_to_forward,
    pattern_of_steps,
)
from repro.errors import UnsupportedXPathError
from repro.plan.nodes import (
    AggregateCountCond,
    AndCond,
    DocEqCond,
    ExistsCond,
    FalseCond,
    LevelCond,
    LogicalSelect,
    NameFilterCond,
    NotCond,
    OrCond,
    PathFilterCond,
    PathsLinkCond,
    PlanCond,
    PlanUnion,
    QueryPlan,
    RawCond,
    StructuralCond,
    TrueCond,
    contains_false,
)
from repro.sqlgen.render import number_literal, string_literal
from repro.xpath.ast import (
    AndExpr,
    ArithmeticExpr,
    Comparison,
    FunctionCall,
    LocationPath,
    NameTest,
    NotExpr,
    NumberLiteral,
    OrExpr,
    PathExpr,
    Step,
    StringLiteral,
    TextTest,
    UnionExpr,
    XPathExpr,
)
from repro.xpath.axes import Axis

if TYPE_CHECKING:
    from repro.core.adapters import Candidate, StoreAdapter

_SQL_OPS = {"=": "=", "!=": "<>", "<": "<", "<=": "<=", ">": ">", ">=": ">="}
_FLIP = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "!=": "!="}


@dataclass
class _Branch:
    """One in-progress branch during backbone processing."""

    stmt: LogicalSelect
    ctx_alias: Optional[str] = None
    ctx_candidate: Optional["Candidate"] = None
    #: Root-anchored pattern ending at the context (None when unknown).
    ctx_pattern: Optional[list[PatternStep]] = None
    #: alias -> its `Paths` alias, for filter reuse.
    paths_aliases: dict[str, str] = field(default_factory=dict)

    def clone(self) -> "_Branch":
        """Deep-copy the statement; share nothing mutable."""
        return _Branch(
            stmt=copy.deepcopy(self.stmt),
            ctx_alias=self.ctx_alias,
            ctx_candidate=self.ctx_candidate,
            ctx_pattern=list(self.ctx_pattern)
            if self.ctx_pattern is not None
            else None,
            paths_aliases=dict(self.paths_aliases),
        )


class Planner:
    """Compiles XPath ASTs to :class:`QueryPlan`s over one adapter."""

    def __init__(
        self,
        adapter: "StoreAdapter",
        prefer_fk_joins: bool = True,
        split_every_step: bool = False,
        use_path_index: bool = True,
    ) -> None:
        self.adapter = adapter
        #: Section 4.2: foreign-key equijoins for single-step
        #: child/parent PPFs; False forces Dewey theta-joins everywhere.
        self.prefer_fk_joins = prefer_fk_joins
        #: Conventional per-step translation (the Section 4.4 strawman).
        self.split_every_step = split_every_step
        #: When False, the `Paths` relation is never touched.
        self.use_path_index = use_path_index
        self._used_aliases: set[str] = set()

    # -- public API ----------------------------------------------------------

    def plan(self, ast: XPathExpr, text: str) -> QueryPlan:
        """Plan ``ast``; raises on unsupported features.

        :raises UnsupportedXPathError: for features outside the SQL
            subset (positional predicates on non-child steps, standalone
            arithmetic results).
        :raises TranslationError: when no relation can host a step.
        """
        self._used_aliases = set()
        if isinstance(ast, UnionExpr):
            selects: list[LogicalSelect] = []
            projections: set[str] = set()
            for branch_expr in ast.branches:
                if not isinstance(branch_expr, PathExpr):
                    raise UnsupportedXPathError(
                        "only unions of location paths are supported"
                    )
                branch_selects, projection = self._plan_location_path(
                    branch_expr.path
                )
                selects.extend(branch_selects)
                projections.add(projection)
            if len(projections) > 1:
                raise UnsupportedXPathError(
                    "union branches must project the same kind of result"
                )
            projection = projections.pop() if projections else "nodes"
            return QueryPlan(self._combine(selects), projection, text)
        if isinstance(ast, PathExpr):
            selects, projection = self._plan_location_path(ast.path)
            return QueryPlan(self._combine(selects), projection, text)
        raise UnsupportedXPathError(
            "top-level expression must be a location path or a union"
        )

    def _combine(
        self, selects: list[LogicalSelect]
    ) -> Union[LogicalSelect, PlanUnion, None]:
        if not selects:
            return None
        if len(selects) == 1:
            return selects[0]
        return PlanUnion(branches=selects, order_by=["doc_id", "dewey_pos"])

    # -- backbone ------------------------------------------------------------

    def _plan_location_path(
        self, path: LocationPath
    ) -> tuple[list[LogicalSelect], str]:
        if not path.absolute:
            # A top-level relative path is evaluated from the document
            # node, i.e. exactly like its absolute form.
            path = LocationPath(absolute=True, steps=path.steps)
        split = split_backbone(path)
        if self.split_every_step:
            _explode_split(split)
        branches = [_Branch(LogicalSelect(distinct=True))]
        for ppf in split.ppfs:
            branches = [
                forked
                for branch in branches
                for forked in self._apply_ppf(branch, ppf)
            ]
            if not branches:
                return [], self._projection_kind(split)
        projection = self._projection_kind(split)
        selects: list[LogicalSelect] = []
        for branch in branches:
            if self._finish_projection(branch, split):
                selects.append(branch.stmt)
        return selects, projection

    @staticmethod
    def _projection_kind(split: SplitBackbone) -> str:
        if split.text_projection:
            return "text"
        if split.attribute_projection is not None:
            return "attribute"
        return "nodes"

    def _finish_projection(
        self, branch: _Branch, split: SplitBackbone
    ) -> bool:
        alias = branch.ctx_alias
        candidate = branch.ctx_candidate
        assert alias is not None and candidate is not None
        columns = [
            f"{alias}.id AS id",
            f"{alias}.doc_id AS doc_id",
            f"{alias}.dewey_pos AS dewey_pos",
        ]
        if split.text_projection:
            value = self.adapter.text_expr(candidate, alias, numeric=False)
            if value is None:
                return False
            branch.stmt.where.add(RawCond(f"{value} IS NOT NULL"))
            columns.append(f"{value} AS value")
        elif split.attribute_projection is not None:
            value = self.adapter.attr_expr(
                candidate, alias, split.attribute_projection, numeric=False
            )
            if value is None:
                return False
            for predicate in split.attribute_predicates:
                branch.stmt.where.add(
                    self._predicate_condition(branch, predicate)
                )
            branch.stmt.where.add(RawCond(f"{value} IS NOT NULL"))
            columns.append(f"{value} AS value")
        branch.stmt.columns = columns
        branch.stmt.order_by = ["doc_id", "dewey_pos"]
        return not contains_false(branch.stmt.where)

    # -- one PPF -------------------------------------------------------------

    def _apply_ppf(self, branch: _Branch, ppf: PPF) -> list[_Branch]:
        ctx_names = (
            branch.ctx_candidate.names
            if branch.ctx_candidate is not None
            else None
        )
        first = branch.ctx_alias is None

        pattern: Optional[list[PatternStep]]
        if ppf.kind is PPFKind.FORWARD:
            pattern = pattern_of_steps(ppf.steps)
            from_root = first  # top-level paths always start at the root
            names = self.adapter.forward_names(
                pattern,
                ctx_names if not from_root else None,
                anchored=from_root,
            )
        elif ppf.kind is PPFKind.BACKWARD:
            if first:
                raise UnsupportedXPathError(
                    "a path cannot start with a backward axis at the root"
                )
            pattern = None
            names = self.adapter.backward_names(ppf.steps, ctx_names)
        else:  # ORDER
            if first:
                raise UnsupportedXPathError(
                    "a path cannot start with an order axis at the root"
                )
            pattern = None
            names = self.adapter.order_names(ppf.prominent_step, ctx_names)

        if names is not None and not names:
            return []

        prominent_name = _concrete_name(ppf.prominent_step)
        candidates = self.adapter.candidates(names, prominent_name)
        if not candidates:
            return []

        forked: list[_Branch] = []
        for index, candidate in enumerate(candidates):
            target = branch if index == len(candidates) - 1 else branch.clone()
            if self._emit_ppf(target, ppf, candidate, pattern):
                forked.append(target)
        return forked

    def _emit_ppf(
        self,
        branch: _Branch,
        ppf: PPF,
        candidate: "Candidate",
        pattern: Optional[list[PatternStep]],
    ) -> bool:
        """Apply one PPF/candidate pair to ``branch``; False kills it."""
        alias = self._fresh_alias(candidate.table)
        branch.stmt.add_scan(candidate.table, alias)
        self._add_name_filter(branch.stmt, candidate, alias)

        new_pattern: Optional[list[PatternStep]] = None
        if not self.use_path_index:
            # Naive per-step mode: no `Paths` joins at all.  Single-step
            # fragments stay exact because each join pins one level and
            # the relation pins the name; the only missing constraint is
            # the root level of the first fragment.
            if ppf.kind is PPFKind.FORWARD and branch.ctx_alias is None:
                minimum, exact = ppf.level_offset()
                sign = "=" if exact else ">="
                branch.stmt.where.add(
                    LevelCond(alias, sign, 3 * minimum)
                )
        elif ppf.kind is PPFKind.FORWARD:
            assert pattern is not None
            if ppf.anchored:
                full = (branch.ctx_pattern or []) + pattern
                anchored = True
            else:
                full = pattern
                anchored = False
            self._add_path_filter(branch, alias, candidate, full, anchored)
            new_pattern = full if anchored else None
        elif ppf.kind is PPFKind.BACKWARD:
            assert branch.ctx_alias is not None
            assert branch.ctx_candidate is not None
            tail = _single_name(branch.ctx_candidate)
            back_pattern = backward_to_forward(ppf.steps, tail)
            self._add_path_filter(
                branch,
                branch.ctx_alias,
                branch.ctx_candidate,
                back_pattern,
                anchored=False,
            )
        else:  # ORDER: filter the path's last label (Algorithm 1, l.6-7)
            order_pattern = [
                PatternStep("child", _concrete_name(ppf.prominent_step))
            ]
            self._add_path_filter(
                branch, alias, candidate, order_pattern, anchored=False
            )

        if branch.ctx_alias is not None:
            self._add_structural_join(branch, ppf, alias)

        predicate_branch = _Branch(
            branch.stmt,
            alias,
            candidate,
            new_pattern,
            branch.paths_aliases,
        )
        for index, predicate in enumerate(ppf.predicates):
            positional = _positional_form(predicate)
            if positional is not None:
                condition = self._positional_condition(
                    predicate_branch, ppf, positional, index
                )
            else:
                condition = self._predicate_condition(
                    predicate_branch, predicate
                )
            branch.stmt.where.add(condition)

        branch.ctx_alias = alias
        branch.ctx_candidate = candidate
        branch.ctx_pattern = new_pattern
        return not contains_false(branch.stmt.where)

    # -- filters -------------------------------------------------------------

    def _add_name_filter(
        self, stmt: LogicalSelect, candidate: "Candidate", alias: str
    ) -> None:
        if not candidate.name_filter or candidate.name_column is None:
            return
        stmt.where.add(
            NameFilterCond(
                alias, candidate.name_column, tuple(candidate.name_filter)
            )
        )

    def _add_path_filter(
        self,
        branch: _Branch,
        alias: str,
        candidate: "Candidate",
        pattern: Sequence[PatternStep],
        anchored: bool,
    ) -> PathFilterCond:
        """Join ``alias`` to `Paths` and return the emitted filter.

        Algorithm 1 followed literally: the filter is *always* emitted;
        proving it redundant (Section 4.5) is the elimination pass's job.
        """
        paths_alias = self._paths_alias(branch, alias)
        condition = PathFilterCond(
            alias,
            paths_alias,
            tuple(pattern),
            anchored,
            names=candidate.names,
        )
        branch.stmt.where.add(condition)
        return condition

    def _paths_alias(self, branch: _Branch, alias: str) -> str:
        existing = branch.paths_aliases.get(alias)
        if existing is not None:
            return existing
        paths_alias = f"{alias}_paths"
        branch.stmt.add_scan("paths", paths_alias)
        branch.stmt.where.add(PathsLinkCond(alias, paths_alias))
        branch.paths_aliases[alias] = paths_alias
        return paths_alias

    # -- structural joins ----------------------------------------------------

    def _add_structural_join(
        self, branch: _Branch, ppf: PPF, alias: str
    ) -> None:
        ctx = branch.ctx_alias
        assert ctx is not None
        stmt = branch.stmt
        step = ppf.prominent_step

        if ppf.kind is PPFKind.ORDER:
            stmt.where.add(StructuralCond(step.axis.value, ctx, alias))
            if step.axis in (Axis.FOLLOWING, Axis.PRECEDING):
                stmt.where.add(DocEqCond(alias, ctx))
            if step.axis is Axis.PRECEDING:
                # The preceding window bounds the *context* side, so the
                # new relation must be bound first (see move_scan_before).
                stmt.move_scan_before(alias, ctx)
            return

        if self.prefer_fk_joins and ppf.is_single_step():
            if step.axis is Axis.CHILD:
                stmt.where.add(RawCond(f"{alias}.par_id = {ctx}.id"))
                return
            if step.axis is Axis.PARENT:
                stmt.where.add(RawCond(f"{alias}.id = {ctx}.par_id"))
                return

        if all(s.axis is Axis.SELF for s in ppf.steps):
            stmt.where.add(StructuralCond("self", ctx, alias))
            stmt.where.add(DocEqCond(alias, ctx))
            return
        minimum, exact = ppf.level_offset()
        if ppf.kind is PPFKind.BACKWARD:
            # Upward Dewey joins range-probe the *context*'s index, so the
            # new (ancestor-side) relation must be bound first.
            stmt.move_scan_before(alias, ctx)
        if exact and minimum == 1:
            # Single-level fragment without the FK shortcut: the Dewey
            # child/parent conditions carry their own length arithmetic.
            axis_name = "child" if ppf.kind is PPFKind.FORWARD else "parent"
            stmt.where.add(StructuralCond(axis_name, ctx, alias))
            stmt.where.add(DocEqCond(alias, ctx))
            return
        if ppf.kind is PPFKind.FORWARD:
            axis_name = "descendant" if minimum > 0 else "descendant-or-self"
        else:
            axis_name = "ancestor" if minimum > 0 else "ancestor-or-self"
        stmt.where.add(StructuralCond(axis_name, ctx, alias))
        stmt.where.add(DocEqCond(alias, ctx))
        if ppf.kind is PPFKind.FORWARD and ppf.anchored:
            # Root-anchored patterns already pin the fragment's interior.
            return
        if minimum > 1 or (exact and minimum != 1):
            sign = (
                "="
                if exact
                else (">=" if ppf.kind is PPFKind.FORWARD else "<=")
            )
            stmt.where.add(
                LevelCond(
                    alias,
                    sign,
                    3 * minimum,
                    base_alias=ctx,
                    negative=ppf.kind is PPFKind.BACKWARD,
                )
            )

    # -- positional predicates -----------------------------------------------

    def _positional_condition(
        self,
        branch: _Branch,
        ppf: PPF,
        form: "_Positional",
        predicate_index: int,
    ) -> PlanCond:
        """Translate ``[k]`` / ``[position() op k]`` / ``[last()]``.

        Supported for ``child``-axis prominent steps: the proximity
        position equals one plus the number of earlier siblings under the
        same parent that satisfy the same node test, which a scalar
        COUNT sub-plan (one per sibling candidate relation) computes.
        """
        step = ppf.prominent_step
        if predicate_index != 0:
            raise UnsupportedXPathError(
                "a positional predicate must be the step's first "
                "predicate in the SQL engines"
            )
        if step.axis is not Axis.CHILD or ppf.kind is not PPFKind.FORWARD:
            raise UnsupportedXPathError(
                "positional predicates are only translated for child-axis "
                "steps (use the native engine otherwise)"
            )
        alias = branch.ctx_alias
        candidate = branch.ctx_candidate
        assert alias is not None and candidate is not None
        sibling_step = Step(Axis.FOLLOWING_SIBLING, step.node_test)
        names = self.adapter.order_names(
            sibling_step,
            candidate.names if candidate.names is not None else None,
        )
        if names is not None:
            # A node is always in its own sibling set (root elements have
            # no schema parents, so the sibling walk alone misses them).
            own = candidate.names or frozenset()
            names = frozenset(names) | frozenset(
                n for n in own if _matches_test(step, n)
            )
        candidates = self.adapter.candidates(names, _concrete_name(step))
        if form.kind == "last":
            following: list[PlanCond] = [
                ExistsCond(self._sibling_subplan(sib, alias, ">"))
                for sib in candidates
            ]
            return NotCond(OrCond(following)) if following else TrueCond()
        if form.op == "=" and form.value != int(form.value):
            return FalseCond()
        counts = [
            self._sibling_count_subplan(sib, alias) for sib in candidates
        ]
        return AggregateCountCond(
            counts, _SQL_OPS[form.op], form.value, offset=1
        )

    def _sibling_subplan(
        self, candidate: "Candidate", alias: str, dewey_cmp: str
    ) -> LogicalSelect:
        inner = self._fresh_alias(candidate.table)
        sub = LogicalSelect(columns=["1"])
        sub.add_scan(candidate.table, inner)
        # `IS` makes the root level (par_id NULL) compare equal too.
        sub.where.add(RawCond(f"{inner}.par_id IS {alias}.par_id"))
        sub.where.add(RawCond(f"{inner}.doc_id = {alias}.doc_id"))
        sub.where.add(
            RawCond(
                f"{inner}.dewey_pos {dewey_cmp} {alias}.dewey_pos"
            )
        )
        if candidate.name_filter and candidate.name_column:
            sub.where.add(
                NameFilterCond(
                    inner,
                    candidate.name_column,
                    tuple(candidate.name_filter),
                )
            )
        return sub

    def _sibling_count_subplan(
        self, candidate: "Candidate", alias: str
    ) -> LogicalSelect:
        sub = self._sibling_subplan(candidate, alias, "<")
        sub.columns = ["COUNT(*)"]
        return sub

    # -- predicates ----------------------------------------------------------

    def _predicate_condition(
        self, branch: _Branch, expr: XPathExpr
    ) -> PlanCond:
        if isinstance(expr, OrExpr):
            return OrCond(
                [
                    self._predicate_condition(branch, expr.left),
                    self._predicate_condition(branch, expr.right),
                ]
            )
        if isinstance(expr, AndExpr):
            conjunction = AndCond()
            conjunction.add(self._predicate_condition(branch, expr.left))
            conjunction.add(self._predicate_condition(branch, expr.right))
            return conjunction
        if isinstance(expr, NotExpr):
            return NotCond(self._predicate_condition(branch, expr.operand))
        if isinstance(expr, UnionExpr):
            return OrCond(
                [
                    self._predicate_condition(branch, sub)
                    for sub in expr.branches
                ]
            )
        if isinstance(expr, Comparison):
            return self._comparison_condition(branch, expr)
        if isinstance(expr, PathExpr):
            return self._existence_condition(branch, expr.path)
        if isinstance(expr, FunctionCall):
            return self._function_condition(branch, expr)
        if isinstance(expr, NumberLiteral):
            raise UnsupportedXPathError(
                "positional predicates have no SQL translation in this "
                "engine (use the native engine)"
            )
        if isinstance(expr, StringLiteral):
            return TrueCond() if expr.value else FalseCond()
        raise UnsupportedXPathError(f"unsupported predicate {expr}")

    def _function_condition(
        self, branch: _Branch, call: FunctionCall
    ) -> PlanCond:
        if call.name in ("contains", "starts-with"):
            target, literal = call.args
            if not isinstance(literal, StringLiteral):
                raise UnsupportedXPathError(
                    f"{call.name}() needs a string literal second argument"
                )
            escaped = (
                literal.value.replace("\\", "\\\\")
                .replace("%", "\\%")
                .replace("_", "\\_")
            )
            like = (
                f"%{escaped}%" if call.name == "contains" else f"{escaped}%"
            )
            return self._value_path_condition(
                branch,
                target,
                "LIKE",
                string_literal(like) + " ESCAPE '\\'",
                numeric=False,
            )
        raise UnsupportedXPathError(
            f"{call.name}() has no SQL translation in this engine"
        )

    def _comparison_condition(
        self, branch: _Branch, expr: Comparison
    ) -> PlanCond:
        left, op, right = expr.left, expr.op, expr.right
        count_condition = self._count_comparison(branch, left, op, right)
        if count_condition is not None:
            return count_condition
        left_is_path = isinstance(left, (PathExpr, UnionExpr))
        right_is_path = isinstance(right, (PathExpr, UnionExpr))
        if not left_is_path and right_is_path:
            left, right = right, left
            op = _FLIP[op]
            left_is_path, right_is_path = True, False

        if left_is_path and right_is_path:
            return self._path_to_path_condition(branch, left, op, right)
        if left_is_path:
            literal_sql, numeric = _literal_sql(right)
            return self._value_path_condition(
                branch, left, _SQL_OPS[op], literal_sql, numeric
            )
        # literal vs literal: fold statically.
        return (
            TrueCond() if _static_compare(op, left, right) else FalseCond()
        )

    def _count_comparison(
        self,
        branch: _Branch,
        left: XPathExpr,
        op: str,
        right: XPathExpr,
    ) -> Optional[PlanCond]:
        """``count(path) op number`` via scalar COUNT sub-plans (summed
        across SQL-splitting branches)."""
        left_count = _count_argument(left)
        right_count = _count_argument(right)
        if left_count is None and right_count is None:
            return None
        if left_count is not None and right_count is not None:
            raise UnsupportedXPathError(
                "count() on both comparison sides is not supported"
            )
        if left_count is None:
            left, right = right, left
            op = _FLIP[op]
            left_count = right_count
        try:
            value = float(_static_value(right))
        except (UnsupportedXPathError, ValueError):
            raise UnsupportedXPathError(
                "count() can only be compared against a number"
            ) from None
        assert left_count is not None
        subplans = []
        for sub in self._build_predicate_path(branch, left_count):
            assert sub.ctx_alias is not None
            sub.stmt.columns = [f"COUNT(DISTINCT {sub.ctx_alias}.id)"]
            sub.stmt.order_by = []
            subplans.append(sub.stmt)
        return AggregateCountCond(subplans, _SQL_OPS[op], value, offset=0)

    def _value_path_condition(
        self,
        branch: _Branch,
        expr: XPathExpr,
        sql_op: str,
        literal_sql: str,
        numeric: bool,
    ) -> PlanCond:
        """``path op literal`` (or LIKE) — Table 5(1) shape."""
        if isinstance(expr, UnionExpr):
            return OrCond(
                [
                    self._value_path_condition(
                        branch, sub, sql_op, literal_sql, numeric
                    )
                    for sub in expr.branches
                ]
            )
        if not isinstance(expr, PathExpr):
            raise UnsupportedXPathError(
                f"cannot compare {expr} against a value in SQL"
            )
        path = expr.path
        shortcut = self._local_value_condition(
            branch, path, sql_op, literal_sql, numeric
        )
        if shortcut is not None:
            return shortcut
        sub_branches = self._build_predicate_path(branch, path)
        alternatives: list[PlanCond] = []
        for sub in sub_branches:
            value = self._branch_value_expr(sub, path)
            if value is None:
                continue
            sub.stmt.where.add(RawCond(f"{value} {sql_op} {literal_sql}"))
            if not contains_false(sub.stmt.where):
                alternatives.append(ExistsCond(sub.stmt))
        if not alternatives:
            return FalseCond()
        return OrCond(alternatives)

    def _local_value_condition(
        self,
        branch: _Branch,
        path: LocationPath,
        sql_op: str,
        literal_sql: str,
        numeric: bool,
    ) -> Optional[PlanCond]:
        """Comparisons that touch only the context row: ``@attr op v``,
        ``text() op v`` and ``. op v``."""
        if path.absolute or len(path.steps) != 1:
            return None
        step = path.steps[0]
        if step.predicates:
            return None
        assert branch.ctx_alias is not None
        assert branch.ctx_candidate is not None
        if step.axis is Axis.ATTRIBUTE:
            name = _concrete_name(step)
            if name is None:
                raise UnsupportedXPathError(
                    "attribute comparisons need a concrete attribute name"
                )
            return self.adapter.attr_condition(
                branch.ctx_candidate,
                branch.ctx_alias,
                name,
                sql_op,
                literal_sql,
                numeric,
                self._fresh_alias,
            )
        if isinstance(step.node_test, TextTest) or (
            step.axis is Axis.SELF and _concrete_name(step) is None
        ):
            value = self.adapter.text_expr(
                branch.ctx_candidate, branch.ctx_alias, numeric
            )
            if value is None:
                return FalseCond()
            return RawCond(f"{value} {sql_op} {literal_sql}")
        return None

    def _path_to_path_condition(
        self,
        branch: _Branch,
        left: XPathExpr,
        op: str,
        right: XPathExpr,
    ) -> PlanCond:
        """Join predicate clause: comparison between two paths
        (Section 4.3, footnote 1 — e.g. the Q-A query)."""
        if isinstance(left, UnionExpr) or isinstance(right, UnionExpr):
            raise UnsupportedXPathError(
                "unions inside join predicate clauses are not supported"
            )
        assert isinstance(left, PathExpr) and isinstance(right, PathExpr)
        alternatives: list[PlanCond] = []
        for left_branch in self._build_predicate_path(branch, left.path):
            left_value = self._branch_value_expr(left_branch, left.path)
            if left_value is None:
                continue
            continued = self._build_predicate_path(
                branch, right.path, base=left_branch
            )
            for both in continued:
                right_value = self._branch_value_expr(both, right.path)
                if right_value is None:
                    continue
                both.stmt.where.add(
                    RawCond(f"{left_value} {_SQL_OPS[op]} {right_value}")
                )
                if not contains_false(both.stmt.where):
                    alternatives.append(ExistsCond(both.stmt))
        if not alternatives:
            return FalseCond()
        return OrCond(alternatives)

    def _existence_condition(
        self, branch: _Branch, path: LocationPath
    ) -> PlanCond:
        assert branch.ctx_alias is not None
        assert branch.ctx_candidate is not None
        # @attr existence.
        if (
            not path.absolute
            and len(path.steps) == 1
            and path.steps[0].axis is Axis.ATTRIBUTE
            and not path.steps[0].predicates
        ):
            name = _concrete_name(path.steps[0])
            if name is None:
                raise UnsupportedXPathError(
                    "wildcard attribute tests are not supported in SQL"
                )
            return self.adapter.attr_condition(
                branch.ctx_candidate,
                branch.ctx_alias,
                name,
                None,
                None,
                False,
                self._fresh_alias,
            )
        # Backward-simple-path-only clause: pure path filtering on the
        # context (Table 5, example 2).
        if (
            self.use_path_index
            and not path.absolute
            and all(s.axis.is_path_backward for s in path.steps)
            and all(not s.predicates for s in path.steps)
        ):
            tail = _single_name(branch.ctx_candidate)
            pattern = backward_to_forward(path.steps, tail)
            paths_alias = self._paths_alias(branch, branch.ctx_alias)
            return PathFilterCond(
                branch.ctx_alias,
                paths_alias,
                tuple(pattern),
                False,
                names=branch.ctx_candidate.names,
            )
        alternatives: list[PlanCond] = [
            ExistsCond(sub.stmt)
            for sub in self._build_predicate_path(branch, path)
            if not contains_false(sub.stmt.where)
        ]
        if not alternatives:
            return FalseCond()
        return OrCond(alternatives)

    # -- predicate sub-paths -------------------------------------------------

    def _build_predicate_path(
        self,
        outer: _Branch,
        path: LocationPath,
        base: Optional[_Branch] = None,
    ) -> list[_Branch]:
        """Build EXISTS-subplan branches for a predicate path.

        The returned branches' statements are ``SELECT NULL`` sub-plans
        correlated with the outer context (for relative paths) or scoped
        to the outer row's document (for absolute paths).  ``base``
        continues an existing sub-plan (join predicate clauses put both
        paths into one sub-select).  Each surviving sub-plan carries the
        context's naive document ordering; the ``prune-distinct-order``
        pass strips it where an EXISTS makes it pointless.
        """
        assert outer.ctx_alias is not None
        split = split_backbone(
            path,
            context_anchored=not path.absolute
            and outer.ctx_pattern is not None,
        )
        if self.split_every_step:
            _explode_split(split)
        if base is not None:
            # Continue an existing sub-plan (join predicate clauses put
            # both paths into one statement), but anchor the new path at
            # the *outer* context, not at the previous path's tail.
            start = _Branch(
                base.stmt,
                None if path.absolute else outer.ctx_alias,
                None if path.absolute else outer.ctx_candidate,
                None if path.absolute else outer.ctx_pattern,
                base.paths_aliases,
            )
        else:
            stmt = LogicalSelect(columns=["NULL"])
            if path.absolute:
                start = _Branch(stmt)
            else:
                start = _Branch(
                    stmt,
                    outer.ctx_alias,
                    outer.ctx_candidate,
                    outer.ctx_pattern,
                )
        branches = [start]
        for index, ppf in enumerate(split.ppfs):
            next_branches: list[_Branch] = []
            for sub in branches:
                for forked in self._apply_ppf(sub, ppf):
                    if index == 0 and path.absolute:
                        # Scope the absolute path to the outer document.
                        assert forked.ctx_alias is not None
                        forked.stmt.where.add(
                            DocEqCond(forked.ctx_alias, outer.ctx_alias)
                        )
                    next_branches.append(forked)
            branches = next_branches
            if not branches:
                return []
        # Projection tails inside predicates assert the projected value
        # exists: [a/@id] is true only for a's that *have* the attribute,
        # and [a/text() ...] needs a non-empty text value.
        surviving: list[_Branch] = []
        for sub in branches:
            assert sub.ctx_alias is not None and sub.ctx_candidate is not None
            if split.attribute_projection is not None:
                expr = self.adapter.attr_expr(
                    sub.ctx_candidate,
                    sub.ctx_alias,
                    split.attribute_projection,
                    numeric=False,
                )
                if expr is None:
                    continue
                sub.stmt.where.add(RawCond(f"{expr} IS NOT NULL"))
            elif split.text_projection:
                expr = self.adapter.text_expr(
                    sub.ctx_candidate, sub.ctx_alias, numeric=False
                )
                if expr is None:
                    continue
                sub.stmt.where.add(RawCond(f"{expr} IS NOT NULL"))
            sub.stmt.order_by = [
                f"{sub.ctx_alias}.doc_id",
                f"{sub.ctx_alias}.dewey_pos",
            ]
            surviving.append(sub)
        return surviving

    def _branch_value_expr(
        self, branch: _Branch, path: LocationPath
    ) -> Optional[str]:
        """SQL expression for the value a predicate path compares."""
        assert branch.ctx_alias is not None
        assert branch.ctx_candidate is not None
        split = split_backbone(path)
        if split.attribute_projection is not None:
            return self.adapter.attr_expr(
                branch.ctx_candidate,
                branch.ctx_alias,
                split.attribute_projection,
                numeric=False,
            )
        return self.adapter.text_expr(
            branch.ctx_candidate, branch.ctx_alias, numeric=False
        )

    # -- helpers -------------------------------------------------------------

    def _fresh_alias(self, table: str) -> str:
        if table not in self._used_aliases:
            self._used_aliases.add(table)
            return table
        counter = 2
        while f"{table}_{counter}" in self._used_aliases:
            counter += 1
        alias = f"{table}_{counter}"
        self._used_aliases.add(alias)
        return alias


# ---------------------------------------------------------------------------
# module helpers
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Positional:
    """A recognized positional predicate shape."""

    kind: str  #: ``cmp`` or ``last``
    op: str = "="
    value: float = 0.0


def _concrete_name(step: Step) -> Optional[str]:
    test = step.node_test
    if isinstance(test, NameTest) and not test.is_wildcard:
        return test.name
    return None


def _single_name(candidate: Optional["Candidate"]) -> Optional[str]:
    if candidate is None or candidate.names is None:
        return None
    if len(candidate.names) == 1:
        return next(iter(candidate.names))
    return None


def _literal_sql(expr: XPathExpr) -> tuple[str, bool]:
    value = _static_value(expr)
    if isinstance(value, float):
        return number_literal(value), True
    return string_literal(value), False


def _static_value(expr: XPathExpr) -> Union[float, str]:
    if isinstance(expr, NumberLiteral):
        return expr.value
    if isinstance(expr, StringLiteral):
        return expr.value
    if isinstance(expr, ArithmeticExpr):
        left = _static_value(expr.left)
        right = _static_value(expr.right)
        if isinstance(left, str) or isinstance(right, str):
            raise UnsupportedXPathError("arithmetic over strings")
        ops = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
            "div": lambda a, b: a / b if b else math.inf,
            "mod": lambda a, b: math.fmod(a, b) if b else math.nan,
        }
        return ops[expr.op](left, right)
    raise UnsupportedXPathError(
        f"expression {expr} is not a literal the SQL engine can evaluate"
    )


def _static_compare(op: str, left: XPathExpr, right: XPathExpr) -> bool:
    a, b = _static_value(left), _static_value(right)
    if op in ("=", "!="):
        if isinstance(a, float) or isinstance(b, float):
            outcome = float(a) == float(b)
        else:
            outcome = a == b
        return outcome if op == "=" else not outcome
    a_num, b_num = float(a), float(b)
    return {
        "<": a_num < b_num,
        "<=": a_num <= b_num,
        ">": a_num > b_num,
        ">=": a_num >= b_num,
    }[op]


def _count_argument(expr: XPathExpr) -> Optional[LocationPath]:
    """The path inside a ``count(path)`` call, if ``expr`` is one."""
    if (
        isinstance(expr, FunctionCall)
        and expr.name == "count"
        and len(expr.args) == 1
        and isinstance(expr.args[0], PathExpr)
    ):
        return expr.args[0].path
    return None


def _matches_test(step: Step, name: str) -> bool:
    """Whether an element name satisfies the step's node test."""
    test = step.node_test
    if isinstance(test, NameTest):
        return test.is_wildcard or test.name == name
    return True


def _is_position_call(expr: XPathExpr) -> bool:
    return isinstance(expr, FunctionCall) and expr.name == "position"


def _is_last_call(expr: XPathExpr) -> bool:
    return isinstance(expr, FunctionCall) and expr.name == "last"


def _positional_form(expr: XPathExpr) -> Optional[_Positional]:
    """Recognize the positional predicate shapes the SQL engines handle.

    Returns a ``cmp`` form for ``[k]`` / ``[position() op k]``, a
    ``last`` form for ``[last()]`` / ``[position() = last()]``, or
    ``None`` when the predicate is not positional at the top level.
    """
    if isinstance(expr, NumberLiteral):
        return _Positional("cmp", "=", expr.value)
    if _is_last_call(expr):
        return _Positional("last")
    if isinstance(expr, Comparison):
        left, op, right = expr.left, expr.op, expr.right
        if _is_position_call(left) and isinstance(right, NumberLiteral):
            return _Positional("cmp", op, right.value)
        if _is_position_call(right) and isinstance(left, NumberLiteral):
            return _Positional("cmp", _FLIP[op], left.value)
        if (
            _is_position_call(left)
            and _is_last_call(right)
            and op == "="
        ) or (
            _is_last_call(left) and _is_position_call(right) and op == "="
        ):
            return _Positional("last")
        if any(
            _is_position_call(side) or _is_last_call(side)
            for side in (left, right)
        ):
            raise UnsupportedXPathError(
                f"positional predicate shape {expr} has no SQL translation"
            )
    return None


def _explode_split(split: SplitBackbone) -> None:
    """Rewrite a backbone split into one single-step fragment per step
    (the conventional per-step translation of Section 4.4's strawman)."""
    exploded: list[PPF] = []
    for ppf in split.ppfs:
        for step in ppf.steps:
            if step.axis.is_path_forward:
                kind = PPFKind.FORWARD
            elif step.axis.is_path_backward:
                kind = PPFKind.BACKWARD
            else:
                kind = PPFKind.ORDER
            exploded.append(PPF(kind, [step], anchored=False))
    split.ppfs = exploded
