"""The logical plan IR sitting between XPath and SQL.

The planner (:mod:`repro.plan.planner`) compiles a parsed XPath
expression into a :class:`QueryPlan` — a union of :class:`LogicalSelect`
branches whose WHERE clauses are *structured* condition trees.  Nothing
here is SQL text yet: path filters carry their pattern steps, structural
joins carry their axis, and Dewey level arithmetic carries its offsets,
so optimizer passes (:mod:`repro.plan.passes`) can inspect and rewrite
them before :mod:`repro.plan.lowering` renders the survivors through a
:class:`~repro.sqlgen.dialect.AnsiDialect`.

Node ↔ paper mapping (see DESIGN.md for the longer version):

* :class:`Scan` / :class:`PathsScan` rows in :attr:`LogicalSelect.scans`
  — the relations Algorithm 1 accumulates per PPF (Section 4.1);
* :class:`PathFilterCond` + :class:`PathsLinkCond` — the Table 1 path
  regex over the `Paths` relation (Sections 4.3–4.4), and the raw
  material of the Section 4.5 elimination pass;
* :class:`StructuralCond` / :class:`LevelCond` / :class:`DocEqCond` —
  the Table 2 Dewey conditions with their level pinning;
* :class:`ExistsCond` — predicate clauses as correlated sub-selects
  (Table 5);
* :class:`PlanUnion` — SQL splitting (Section 4.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Optional, Union

if TYPE_CHECKING:  # imported lazily to keep the plan layer import-light
    from repro.core.pathregex import PatternStep


class PlanCond:
    """Base class of logical WHERE-clause condition nodes."""

    def brief(self) -> str:
        """One-line description used by ``explain --plan``."""
        return type(self).__name__


@dataclass
class TrueCond(PlanCond):
    """Statically true (folded away before lowering)."""

    def brief(self) -> str:
        return "true"


@dataclass
class FalseCond(PlanCond):
    """Statically false; a top-level occurrence kills its branch."""

    def brief(self) -> str:
        return "false"


@dataclass
class RawCond(PlanCond):
    """A dialect-neutral SQL boolean (value comparisons, FK equijoins)."""

    sql: str

    def brief(self) -> str:
        return self.sql


@dataclass
class AndCond(PlanCond):
    """Conjunction; empty means TRUE."""

    parts: list[PlanCond] = field(default_factory=list)

    def add(self, condition: Optional[PlanCond]) -> None:
        """Append, flattening nested conjunctions; ``None`` is a no-op."""
        if condition is None:
            return
        if isinstance(condition, AndCond):
            for part in condition.parts:
                self.add(part)
        else:
            self.parts.append(condition)

    def brief(self) -> str:
        return "and"


@dataclass
class OrCond(PlanCond):
    """Disjunction; empty means FALSE."""

    parts: list[PlanCond] = field(default_factory=list)

    def brief(self) -> str:
        return "or"


@dataclass
class NotCond(PlanCond):
    """Negation."""

    operand: PlanCond

    def brief(self) -> str:
        return "not"


@dataclass
class ExistsCond(PlanCond):
    """``EXISTS`` over a correlated sub-select (Table 5 predicates)."""

    subplan: "LogicalSelect"

    def brief(self) -> str:
        scans = ", ".join(s.alias for s in self.subplan.scans)
        return f"exists({scans})"


@dataclass
class PathFilterCond(PlanCond):
    """A Table 1 path filter over ``paths_alias.path``.

    The planner always emits these in ``regex`` mode with the raw
    pattern steps attached (Algorithm 1 followed literally); the
    Section 4.5 elimination pass may drop the node entirely, the
    regex→equality pass may switch it to ``equality`` mode with a
    ``literal`` payload, and the costed access-strategy pass may switch
    it to ``in`` mode with the enumerated ``literals`` (a small set of
    schema-complete root paths, chosen over a regex scan by estimated
    selectivity).  ``names`` is the candidate's covered element names
    (``None`` in the schema-oblivious mapping).
    """

    alias: str
    paths_alias: str
    pattern: tuple["PatternStep", ...]
    anchored: bool
    names: Optional[frozenset[str]] = None
    mode: str = "regex"  #: ``regex``, ``equality`` or ``in``
    literal: Optional[str] = None
    literals: Optional[tuple[str, ...]] = None

    def brief(self) -> str:
        if self.mode == "equality":
            shape: str = self.literal or "?"
        elif self.mode == "in":
            shape = f"in[{len(self.literals or ())}]"
        else:
            shape = "~regex"
        return f"path-filter {self.paths_alias} {shape}"


@dataclass
class PathsLinkCond(PlanCond):
    """The FK link ``owner.path_id = paths_alias.id`` behind a filter."""

    owner_alias: str
    paths_alias: str

    def brief(self) -> str:
        return f"paths-link {self.owner_alias}→{self.paths_alias}"


@dataclass
class NameFilterCond(PlanCond):
    """Element-name restriction on a shared relation / Edge name column."""

    alias: str
    column: str
    names: tuple[str, ...]

    def brief(self) -> str:
        return f"name {self.alias}.{self.column} in {list(self.names)}"


@dataclass
class StructuralCond(PlanCond):
    """A Table 2 Dewey structural join between two relation aliases."""

    axis: str
    context_alias: str
    target_alias: str

    def brief(self) -> str:
        return (
            f"structural {self.axis}"
            f"({self.context_alias}, {self.target_alias})"
        )


@dataclass
class DocEqCond(PlanCond):
    """Same-document guard (rendered with the dialect's index hint)."""

    left_alias: str
    right_alias: str

    def brief(self) -> str:
        return f"doc {self.left_alias} = {self.right_alias}"


@dataclass
class LevelCond(PlanCond):
    """Dewey level (encoded-length) arithmetic pinning a fragment.

    Without ``base_alias``: ``level(alias) sign offset`` (root pinning in
    the naive per-step mode).  With it: ``level(alias) sign
    level(base_alias) ± offset`` — ``negative`` selects ``-``.
    """

    alias: str
    sign: str
    offset: int
    base_alias: Optional[str] = None
    negative: bool = False

    def brief(self) -> str:
        if self.base_alias is None:
            return f"level({self.alias}) {self.sign} {self.offset}"
        op = "-" if self.negative else "+"
        return (
            f"level({self.alias}) {self.sign} "
            f"level({self.base_alias}) {op} {self.offset}"
        )


@dataclass
class AggregateCountCond(PlanCond):
    """``(sum of scalar COUNT sub-selects [+ offset]) op value``.

    Backs positional predicates (``offset=1``: proximity position is one
    plus the count of earlier matching siblings) and ``count(path) op k``
    comparisons (``offset=0``), with one sub-select per SQL-splitting
    branch of the counted path.
    """

    subplans: list["LogicalSelect"]
    op: str
    value: float
    offset: int = 0

    def brief(self) -> str:
        return f"count[{len(self.subplans)}] {self.op} {self.value:g}"


# ---------------------------------------------------------------------------
# scans and selects
# ---------------------------------------------------------------------------


@dataclass
class Scan:
    """One FROM-clause relation.  Order matters: lowering renders scans
    with ``CROSS JOIN``, which SQLite treats as a binding-order
    directive (see :meth:`LogicalSelect.move_scan_before`)."""

    table: str
    alias: str

    @property
    def is_paths(self) -> bool:
        """Whether this scans the `Paths` relation."""
        return self.table == "paths"


@dataclass
class LogicalSelect:
    """One SQL-splitting branch (or correlated sub-select) of the plan."""

    columns: list[str] = field(default_factory=list)
    scans: list[Scan] = field(default_factory=list)
    where: AndCond = field(default_factory=AndCond)
    distinct: bool = False
    order_by: list[str] = field(default_factory=list)

    def add_scan(self, table: str, alias: Optional[str] = None) -> Scan:
        """Add a FROM entry (idempotent per alias) and return it."""
        alias = alias or table
        for existing in self.scans:
            if existing.alias == alias:
                return existing
        scan = Scan(table, alias)
        self.scans.append(scan)
        return scan

    def has_alias(self, alias: str) -> bool:
        """Whether the FROM clause already binds ``alias``."""
        return any(scan.alias == alias for scan in self.scans)

    def move_scan_before(self, alias: str, reference: str) -> None:
        """Reorder scans so ``alias`` precedes ``reference`` (to the
        front when ``reference`` is a correlated outer alias)."""
        index = next(
            (i for i, s in enumerate(self.scans) if s.alias == alias),
            None,
        )
        if index is None:
            return
        scan = self.scans.pop(index)
        target = next(
            (
                i
                for i, existing in enumerate(self.scans)
                if existing.alias == reference
            ),
            0,
        )
        self.scans.insert(target, scan)


@dataclass
class PlanUnion:
    """SQL splitting (Section 4.4): a union of branches sharing one
    global ORDER BY."""

    branches: list[LogicalSelect]
    order_by: list[str] = field(default_factory=list)


@dataclass
class QueryPlan:
    """A fully planned XPath expression."""

    root: Union[LogicalSelect, PlanUnion, None]
    #: ``nodes`` (element rows), ``text`` or ``attribute`` (value rows).
    projection: str
    expression: str

    @property
    def is_empty(self) -> bool:
        """True when planning (or optimization) proved the result empty."""
        return self.root is None

    def branches(self) -> list[LogicalSelect]:
        """Top-level branches (without descending into sub-selects)."""
        if self.root is None:
            return []
        if isinstance(self.root, PlanUnion):
            return list(self.root.branches)
        return [self.root]


# ---------------------------------------------------------------------------
# walkers
# ---------------------------------------------------------------------------


def child_conditions(condition: PlanCond) -> list[PlanCond]:
    """Direct sub-conditions of ``condition`` (not sub-*plans*)."""
    if isinstance(condition, AndCond):
        return list(condition.parts)
    if isinstance(condition, OrCond):
        return list(condition.parts)
    if isinstance(condition, NotCond):
        return [condition.operand]
    return []


def child_subplans(condition: PlanCond) -> list[LogicalSelect]:
    """Sub-selects directly owned by ``condition``."""
    if isinstance(condition, ExistsCond):
        return [condition.subplan]
    if isinstance(condition, AggregateCountCond):
        return list(condition.subplans)
    return []


def iter_conditions(condition: PlanCond) -> Iterator[PlanCond]:
    """All condition nodes under ``condition`` (without crossing into
    sub-selects), including ``condition`` itself."""
    yield condition
    for child in child_conditions(condition):
        yield from iter_conditions(child)


def iter_selects(
    root: Union[LogicalSelect, PlanUnion, QueryPlan, None],
) -> Iterator[LogicalSelect]:
    """Every select in the plan, outer branches first, then (recursively)
    the sub-selects hanging off their conditions."""
    if root is None:
        return
    if isinstance(root, QueryPlan):
        yield from iter_selects(root.root)
        return
    branches = (
        list(root.branches) if isinstance(root, PlanUnion) else [root]
    )
    for branch in branches:
        yield branch
        for condition in iter_conditions(branch.where):
            for subplan in child_subplans(condition):
                yield from iter_selects(subplan)


def rewrite_condition(
    condition: PlanCond, fn: Callable[[PlanCond], PlanCond]
) -> PlanCond:
    """Post-order rewrite of a condition tree (without crossing into
    sub-selects); ``fn`` maps each node to its replacement."""
    if isinstance(condition, AndCond):
        condition.parts = [
            rewrite_condition(part, fn) for part in condition.parts
        ]
    elif isinstance(condition, OrCond):
        condition.parts = [
            rewrite_condition(part, fn) for part in condition.parts
        ]
    elif isinstance(condition, NotCond):
        condition.operand = rewrite_condition(condition.operand, fn)
    return fn(condition)


def rewrite_plan(
    root: Union[LogicalSelect, PlanUnion, QueryPlan, None],
    fn: Callable[[PlanCond], PlanCond],
) -> None:
    """Apply :func:`rewrite_condition` to every select's WHERE tree,
    including sub-selects."""
    for select in iter_selects(root):
        rewritten = rewrite_condition(select.where, fn)
        if isinstance(rewritten, AndCond):
            select.where = rewritten
        else:
            select.where = AndCond([rewritten])


def contains_false(condition: PlanCond) -> bool:
    """True when a top-level conjunction contains FALSE."""
    if isinstance(condition, FalseCond):
        return True
    if isinstance(condition, AndCond):
        return any(contains_false(part) for part in condition.parts)
    return False


# ---------------------------------------------------------------------------
# statistics and pretty-printing
# ---------------------------------------------------------------------------


def plan_stats(plan: QueryPlan) -> dict[str, int]:
    """Structural counters used by ``explain`` and the benchmarks."""
    branches = len(plan.branches())
    scans = 0
    paths_joins = 0
    path_filters = 0
    structural_joins = 0
    exists_subplans = 0
    conditions = 0
    for select in iter_selects(plan):
        for scan in select.scans:
            scans += 1
            if scan.is_paths:
                paths_joins += 1
        for condition in iter_conditions(select.where):
            conditions += 1
            if isinstance(condition, PathFilterCond):
                path_filters += 1
            elif isinstance(condition, StructuralCond):
                structural_joins += 1
            elif isinstance(condition, ExistsCond):
                exists_subplans += 1
    return {
        "branches": branches,
        "scans": scans,
        "paths_joins": paths_joins,
        "path_filters": path_filters,
        "structural_joins": structural_joins,
        "exists_subplans": exists_subplans,
        "conditions": conditions,
    }


def _describe_select(select: LogicalSelect, indent: str) -> list[str]:
    flags = []
    if select.distinct:
        flags.append("distinct")
    if select.order_by:
        flags.append("order=" + ",".join(select.order_by))
    suffix = f"  [{' '.join(flags)}]" if flags else ""
    lines = [f"{indent}select{suffix}"]
    for scan in select.scans:
        kind = " (paths)" if scan.is_paths else ""
        name = (
            scan.table
            if scan.table == scan.alias
            else f"{scan.table} AS {scan.alias}"
        )
        lines.append(f"{indent}  scan {name}{kind}")
    for condition in select.where.parts:
        lines.extend(_describe_condition(condition, indent + "  "))
    return lines


def _describe_condition(condition: PlanCond, indent: str) -> list[str]:
    lines = [f"{indent}{condition.brief()}"]
    for child in child_conditions(condition):
        lines.extend(_describe_condition(child, indent + "  "))
    for subplan in child_subplans(condition):
        lines.extend(_describe_select(subplan, indent + "  "))
    return lines


def describe_plan(plan: QueryPlan) -> str:
    """An indented, human-readable rendering of the plan tree."""
    header = f"plan {plan.expression!r} -> {plan.projection}"
    if plan.root is None:
        return header + "\n  (statically empty)"
    lines = [header]
    branches = plan.branches()
    if isinstance(plan.root, PlanUnion):
        lines.append(
            f"  union of {len(branches)} branches"
            + (
                f"  [order={','.join(plan.root.order_by)}]"
                if plan.root.order_by
                else ""
            )
        )
    for index, branch in enumerate(branches, start=1):
        if len(branches) > 1:
            lines.append(f"  branch {index}:")
            lines.extend(_describe_select(branch, "    "))
        else:
            lines.extend(_describe_select(branch, "  "))
    return "\n".join(lines)
