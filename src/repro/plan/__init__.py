"""Logical query plans: the IR between XPath and SQL.

Pipeline: :class:`~repro.plan.planner.Planner` produces a
:class:`~repro.plan.nodes.QueryPlan`, a
:class:`~repro.plan.passes.PassPipeline` optimizes it, and
:func:`~repro.plan.lowering.lower_plan` renders the survivor through a
SQL dialect.  :class:`repro.core.translator.PPFTranslator` is the facade
that wires the three together.
"""

from repro.plan.nodes import (
    AggregateCountCond,
    AndCond,
    DocEqCond,
    ExistsCond,
    FalseCond,
    LevelCond,
    LogicalSelect,
    NameFilterCond,
    NotCond,
    OrCond,
    PathFilterCond,
    PathsLinkCond,
    PlanCond,
    PlanUnion,
    QueryPlan,
    RawCond,
    Scan,
    StructuralCond,
    TrueCond,
    contains_false,
    describe_plan,
    iter_conditions,
    iter_selects,
    plan_stats,
)
from repro.plan.passes import (
    DEFAULT_PASS_NAMES,
    PASSES,
    EliminationWitness,
    PassContext,
    PassPipeline,
    PassReport,
    fold_plan,
    resolve_pass_names,
)
from repro.plan.lowering import lower_condition, lower_plan, lower_select
from repro.plan.planner import Planner

__all__ = [
    "AggregateCountCond",
    "AndCond",
    "DEFAULT_PASS_NAMES",
    "DocEqCond",
    "EliminationWitness",
    "ExistsCond",
    "FalseCond",
    "LevelCond",
    "LogicalSelect",
    "NameFilterCond",
    "NotCond",
    "OrCond",
    "PASSES",
    "PassContext",
    "PassPipeline",
    "PassReport",
    "PathFilterCond",
    "PathsLinkCond",
    "PlanCond",
    "PlanUnion",
    "Planner",
    "QueryPlan",
    "RawCond",
    "Scan",
    "StructuralCond",
    "TrueCond",
    "contains_false",
    "describe_plan",
    "fold_plan",
    "iter_conditions",
    "iter_selects",
    "lower_condition",
    "lower_plan",
    "lower_select",
    "plan_stats",
    "resolve_pass_names",
]
