"""Cardinality estimation over logical plans (the cost model).

Given a :class:`~repro.stats.summary.PathSummary`, the estimator assigns
every scan a base cardinality (exact for path-filtered scans — the
summary holds per-path element counts), then walks the top-level WHERE
conjunction applying one selectivity per join/filter class.  The model
is System-R-flavoured and deliberately small; every formula is listed in
DESIGN.md's "costed decision" table.

Estimates steer *performance* decisions only (join order, access
strategy, union-branch order, fan-out gating) — a wrong estimate can
never change what a query returns, which is what makes stale statistics
safe.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Optional

from repro.core.pathregex import compile_pattern
from repro.plan.nodes import (
    AggregateCountCond,
    DocEqCond,
    ExistsCond,
    LogicalSelect,
    PathFilterCond,
    PathsLinkCond,
    PlanUnion,
    QueryPlan,
    RawCond,
    Scan,
    StructuralCond,
)
from repro.stats.summary import PathSummary

#: Selectivity of a single-alias equality predicate (System R's 1/10).
EQ_SELECTIVITY = 0.1
#: Selectivity of a single-alias range/other predicate (System R's 1/3).
RANGE_SELECTIVITY = 0.3
#: Selectivity of an ``IS NOT NULL`` presence test.
NOTNULL_SELECTIVITY = 0.5
#: Selectivity applied once per EXISTS / aggregate-count predicate.
EXISTS_SELECTIVITY = 0.5

#: Axes where each target row has at most one matching context chain
#: (output ~ card(target), so selectivity is 1/card(context)).
_DOWNWARD_AXES = {"child", "descendant", "descendant-or-self", "self"}
#: Axes where each context row has few matching targets
#: (output ~ card(context), so selectivity is 1/card(target)).
_UPWARD_AXES = {"parent", "ancestor", "ancestor-or-self"}

_ALIAS_REF = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\.")
_FK_JOIN = re.compile(
    r"^(\w+)\.par_id (?:=|IS) (\w+)\.(?:id|par_id)$"
    r"|^(\w+)\.id = (\w+)\.par_id$"
)


@dataclass(frozen=True)
class PlanEstimate:
    """Estimated result cardinality of a whole plan."""

    total_rows: float
    #: One estimate per top-level branch, in branch order.
    branch_rows: tuple[float, ...]


class CardinalityEstimator:
    """Estimates row counts for plan nodes from a path summary."""

    def __init__(self, summary: PathSummary):
        self.summary = summary
        self._regex_cache: dict[tuple[object, ...], "re.Pattern[str]"] = {}

    # -- path filters -------------------------------------------------------

    def _compiled(self, cond: PathFilterCond) -> "re.Pattern[str]":
        key = (cond.pattern, cond.anchored)
        compiled = self._regex_cache.get(key)
        if compiled is None:
            compiled = re.compile(
                compile_pattern(list(cond.pattern), cond.anchored)
            )
            self._regex_cache[key] = compiled
        return compiled

    def filter_rows(self, cond: PathFilterCond) -> float:
        """Element rows satisfying one path filter (exact per-path
        counts for equality/IN, summed matches for a regex)."""
        if cond.mode == "equality":
            assert cond.literal is not None
            return float(self.summary.count_for(cond.literal))
        if cond.mode == "in":
            return float(
                sum(self.summary.count_for(p) for p in cond.literals or ())
            )
        return float(self.summary.count_matching(self._compiled(cond)))

    def filter_paths(self, cond: PathFilterCond) -> float:
        """`Paths` rows satisfying one path filter."""
        if cond.mode == "equality":
            return 1.0
        if cond.mode == "in":
            return float(len(cond.literals or ()))
        return float(len(self.summary.matching_paths(self._compiled(cond))))

    # -- scans --------------------------------------------------------------

    def scan_rows(self, select: LogicalSelect, scan: Scan) -> float:
        """Base cardinality of one scan after its local predicates."""
        parts = select.where.parts
        if scan.is_paths:
            for part in parts:
                if (
                    isinstance(part, PathFilterCond)
                    and part.paths_alias == scan.alias
                ):
                    return max(self.filter_paths(part), 0.0)
            return float(max(self.summary.path_count, 1))
        base: Optional[float] = None
        for part in parts:
            if isinstance(part, PathFilterCond) and part.alias == scan.alias:
                base = self.filter_rows(part)
                break
        if base is None:
            known = self.summary.relation_count_for(scan.table)
            base = float(
                known
                if known is not None
                else max(self.summary.total_elements, 1)
            )
        selectivity = 1.0
        for part in parts:
            if not isinstance(part, RawCond) or _FK_JOIN.match(part.sql):
                continue
            aliases = set(_ALIAS_REF.findall(part.sql))
            if aliases != {scan.alias}:
                continue
            if "IS NOT NULL" in part.sql:
                selectivity *= NOTNULL_SELECTIVITY
            elif re.search(r"(?<![<>])=", part.sql):
                selectivity *= EQ_SELECTIVITY
            else:
                selectivity *= RANGE_SELECTIVITY
        return max(base * selectivity, 0.0)

    # -- selects ------------------------------------------------------------

    def select_rows(self, select: LogicalSelect) -> float:
        """Estimated output rows of one branch / sub-select body."""
        rows = {
            scan.alias: self.scan_rows(select, scan)
            for scan in select.scans
        }
        estimate = 1.0
        for value in rows.values():
            estimate *= value
        joined: set[frozenset[str]] = set()

        def card(alias: str) -> float:
            return max(rows.get(alias, 1.0), 1.0)

        for part in select.where.parts:
            if isinstance(part, PathsLinkCond):
                if part.paths_alias in rows:
                    estimate /= card(part.paths_alias)
                joined.add(
                    frozenset((part.owner_alias, part.paths_alias))
                )
            elif isinstance(part, StructuralCond):
                context = part.context_alias
                target = part.target_alias
                if part.axis in _DOWNWARD_AXES:
                    estimate /= card(context)
                elif part.axis in _UPWARD_AXES:
                    estimate /= card(target)
                else:  # order axes: same-document pairs, halved
                    estimate *= 0.5 / max(
                        self.summary.document_count, 1
                    )
                joined.add(frozenset((context, target)))
            elif isinstance(part, RawCond):
                match = _FK_JOIN.match(part.sql)
                if match is None:
                    continue
                groups = [g for g in match.groups() if g is not None]
                child, parent = groups[0], groups[1]
                if match.group(3) is not None:
                    child, parent = parent, child
                if parent in rows:
                    estimate /= card(parent)
                joined.add(frozenset((child, parent)))
            elif isinstance(part, DocEqCond):
                pair = frozenset((part.left_alias, part.right_alias))
                if pair not in joined and len(pair) == 2:
                    estimate /= max(self.summary.document_count, 1)
                joined.add(pair)
            elif isinstance(part, (ExistsCond, AggregateCountCond)):
                estimate *= EXISTS_SELECTIVITY
        return max(estimate, 0.0)

    # -- plans --------------------------------------------------------------

    def estimate_plan(self, plan: QueryPlan) -> PlanEstimate:
        """Per-branch and total row estimates for a whole plan."""
        if plan.root is None:
            return PlanEstimate(total_rows=0.0, branch_rows=())
        branches = (
            list(plan.root.branches)
            if isinstance(plan.root, PlanUnion)
            else [plan.root]
        )
        branch_rows = tuple(self.select_rows(b) for b in branches)
        return PlanEstimate(
            total_rows=sum(branch_rows), branch_rows=branch_rows
        )
