"""Optimizer passes over the logical plan.

Each pass is an independent, individually toggleable rewrite of a
:class:`~repro.plan.nodes.QueryPlan`.  The pipeline interleaves the
passes with an always-on constant folder (``fold_plan``) that propagates
``TRUE``/``FALSE`` conditions, prunes statically dead branches and
collapses single-branch unions, so passes are free to rewrite locally
and let the folder clean up.

The shipped passes (in default order):

``paths-join-elimination``
    The paper's Section 4.5: using the schema marking (U-P / F-P / I-P
    label classes), a path filter whose candidate names all *provably*
    satisfy the pattern is dropped — and its `Paths` join with it — while
    a filter no candidate can satisfy kills its branch.  Disabled by the
    engines' ``path_filter_optimization=False`` ablation switch.

``regex-to-equality``
    Table 3: a pattern denoting exactly one literal path becomes a plain
    ``paths.path = '...'`` equality (syntactic rule), and a *needed*
    filter over finitely-pathed (U-P/F-P) labels whose root paths match
    the regex in exactly one place becomes an equality against that one
    path (marking rule).

``prune-distinct-order``
    Drops ORDER BY from sub-selects (EXISTS / scalar COUNT bodies, where
    ordering is wasted work) and from union branches (the union carries
    the global ordering), and drops DISTINCT where the plan shape proves
    result rows unique — a single element scan whose only companions are
    1:1 `Paths` links — or where the surrounding UNION deduplicates
    anyway.

``dedup-union-branches``
    SQL splitting (Section 4.4) can emit structurally identical branches
    — e.g. ``//C | /A/B/C`` after filter elimination — which are
    detected by alias-canonical fingerprinting and merged.

``costed-access-strategy``
    Statistics-driven replacement of the static Table 3 rule: a regex
    filter whose candidates enumerate a *small* set of root paths
    (relative to the estimated `Paths` table size) becomes a path
    equality (one path) or an ``IN`` membership test (a few paths)
    instead of a per-row regex scan.  Schema-complete enumeration keeps
    the rewrite semantics-preserving; the summary only decides *when*
    it pays off.

``costed-join-order``
    Structural-join reordering, smallest estimated input first: scans
    are grouped with their `Paths` companions and greedily reordered by
    estimated cardinality, preserving every structural join's binding
    orientation (CROSS JOIN order is SQLite's nested-loop order, so a
    Dewey range probe must keep its probe side inner) and join-graph
    connectivity.  Each applied reorder records a
    :class:`ReorderWitness` for the PV008 verifier invariant.

``costed-union-order``
    Orders UNION branches largest-estimate first, so
    ``execute_parallel`` schedules the long poles early (UNION output
    is order-insensitive: results are deduped and globally re-sorted).

The three costed passes consult :attr:`PassContext.summary` and keep
quiet when no statistics were collected, so every pass combination
stays sound on stats-less stores.
"""

from __future__ import annotations

import copy
import re
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.pathregex import compile_pattern, exact_path
from repro.errors import TranslationError
from repro.plan.nodes import (
    AggregateCountCond,
    AndCond,
    DocEqCond,
    ExistsCond,
    FalseCond,
    LevelCond,
    LogicalSelect,
    NameFilterCond,
    NotCond,
    OrCond,
    PathFilterCond,
    PathsLinkCond,
    PlanCond,
    PlanUnion,
    QueryPlan,
    RawCond,
    Scan,
    StructuralCond,
    TrueCond,
    child_subplans,
    contains_false,
    iter_conditions,
    iter_selects,
    rewrite_condition,
)
from repro.plan.cost import CardinalityEstimator
from repro.schema.marking import PathClass, SchemaMarking
from repro.stats.summary import PathSummary

_COMPARATORS: dict[str, Callable[[float, float], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass
class PassContext:
    """Shared state the passes may consult.

    ``marking`` is the Section 4.5 schema marking (``None`` for the
    schema-oblivious Edge mapping, where no static path knowledge
    exists and the marking-based passes keep quiet).  ``summary`` is
    the store's collected :class:`~repro.stats.summary.PathSummary`
    (``None`` when statistics were never collected or the adapter has
    none — the costed passes then keep quiet).
    """

    marking: Optional[SchemaMarking] = None
    summary: Optional[PathSummary] = None


@dataclass(frozen=True)
class EliminationWitness:
    """The marking evidence justifying one Section 4.5 rewrite.

    Every ``paths-join-elimination`` decision records one witness so the
    static verifier (:mod:`repro.analysis`) can re-derive the claim:
    ``kind`` is ``"redundant"`` (all candidate root paths provably
    satisfy the filter, so it was dropped) or ``"unsatisfiable"`` (no
    candidate can satisfy it, so the branch was killed); ``classes``
    maps each candidate name to its U-P / F-P / I-P tag and
    ``matched_paths`` lists the enumerated root paths that matched.
    """

    kind: str  #: ``redundant`` or ``unsatisfiable``
    alias: str
    paths_alias: str
    pattern: "tuple[object, ...]"  #: the filter's PatternStep sequence
    anchored: bool
    classes: tuple[tuple[str, str], ...]  #: (name, path-class value)
    matched_paths: tuple[str, ...]


@dataclass(frozen=True)
class ReorderWitness:
    """The evidence justifying one cost-based reorder.

    Every ``costed-join-order`` / ``costed-union-order`` decision
    records one witness so the static verifier's PV008 invariant can
    re-derive the claim: ``before``/``after`` list the reordered items
    as ``(table, alias)`` pairs (scan order) or ``(index, signature)``
    pairs (union-branch order), ``ordered_pairs`` lists the alias pairs
    whose relative order the reorder was required to preserve (the
    structural joins' binding orientations), and ``estimates`` carries
    the per-item cardinality estimates in ``after`` order.
    """

    kind: str  #: ``join-order`` or ``union-order``
    before: tuple[tuple[str, str], ...]
    after: tuple[tuple[str, str], ...]
    ordered_pairs: tuple[tuple[str, str], ...] = ()
    estimates: tuple[float, ...] = ()


@dataclass
class PassReport:
    """What one pass did to one plan."""

    name: str
    fired: bool  #: whether the pass changed the plan at all
    changes: int  #: number of individual rewrites applied
    detail: str  #: human-readable one-liner for ``explain``
    #: One :class:`EliminationWitness` per Section 4.5 rewrite (only the
    #: ``paths-join-elimination`` pass records these).
    witnesses: tuple[EliminationWitness, ...] = ()
    #: One :class:`ReorderWitness` per cost-based reorder (only the
    #: ``costed-join-order``/``costed-union-order`` passes record these).
    reorders: tuple[ReorderWitness, ...] = ()

    def summary(self) -> str:
        """``name: detail`` line for CLI output."""
        state = "fired" if self.fired else "no-op"
        return f"{self.name} [{state}]: {self.detail}"


# ---------------------------------------------------------------------------
# constant folding (always on)
# ---------------------------------------------------------------------------


def _rewrap(condition: PlanCond) -> AndCond:
    """Normalize a rewritten WHERE tree back to a top-level AndCond."""
    if isinstance(condition, AndCond):
        return condition
    if isinstance(condition, TrueCond):
        return AndCond()
    wrapper = AndCond()
    wrapper.add(condition)
    return wrapper


def _fold_condition(condition: PlanCond) -> PlanCond:
    """One folding step; applied post-order by :func:`rewrite_condition`."""
    if isinstance(condition, AndCond):
        parts = [
            p for p in condition.parts if not isinstance(p, TrueCond)
        ]
        if any(isinstance(p, FalseCond) for p in parts):
            return FalseCond()
        if not parts:
            return TrueCond()
        if len(parts) == 1:
            return parts[0]
        return AndCond(parts)
    if isinstance(condition, OrCond):
        parts = [
            p for p in condition.parts if not isinstance(p, FalseCond)
        ]
        if any(isinstance(p, TrueCond) for p in parts):
            return TrueCond()
        if not parts:
            return FalseCond()
        if len(parts) == 1:
            return parts[0]
        return OrCond(parts)
    if isinstance(condition, NotCond):
        if isinstance(condition.operand, TrueCond):
            return FalseCond()
        if isinstance(condition.operand, FalseCond):
            return TrueCond()
        return condition
    if isinstance(condition, ExistsCond):
        if contains_false(condition.subplan.where):
            return FalseCond()
        return condition
    if isinstance(condition, AggregateCountCond):
        condition.subplans = [
            sub
            for sub in condition.subplans
            if not contains_false(sub.where)
        ]
        if not condition.subplans:
            outcome = _COMPARATORS[condition.op](
                float(condition.offset), condition.value
            )
            return TrueCond() if outcome else FalseCond()
        return condition
    return condition


def fold_plan(plan: QueryPlan) -> QueryPlan:
    """Propagate constants and prune dead branches, in place.

    Sub-selects fold before the selects that own them, so an EXISTS over
    a statically false body collapses bottom-up in one sweep.  A union
    left with a single live branch collapses to that branch (inheriting
    the union's ORDER BY, and conservatively re-acquiring DISTINCT when
    the UNION keyword was what guaranteed uniqueness).
    """
    for select in reversed(list(iter_selects(plan))):
        select.where = _rewrap(
            rewrite_condition(select.where, _fold_condition)
        )
    root = plan.root
    if isinstance(root, PlanUnion):
        root.branches = [
            b for b in root.branches if not contains_false(b.where)
        ]
        if not root.branches:
            plan.root = None
        elif len(root.branches) == 1:
            only = root.branches[0]
            if not only.order_by:
                only.order_by = list(root.order_by)
            if not only.distinct and not _distinct_redundant(only):
                only.distinct = True
            plan.root = only
    elif isinstance(root, LogicalSelect) and contains_false(root.where):
        plan.root = None
    return plan


# ---------------------------------------------------------------------------
# pass: paths-join-elimination (Section 4.5)
# ---------------------------------------------------------------------------


def _filter_analysis(
    cond: PathFilterCond, marking: SchemaMarking
) -> tuple[bool, bool, set[str]]:
    """Evaluate a regex filter against the marking.

    Returns ``(any_match, needed, matched_paths)``: whether any candidate
    name can satisfy the filter at all, whether some enumerated root path
    fails it (so the filter restricts something), and the set of
    enumerated root paths that do match (meaningless when an I-P label is
    involved — those contribute no enumerable paths).
    """
    assert cond.names is not None
    compiled = re.compile(compile_pattern(list(cond.pattern), cond.anchored))
    needed = False
    any_match = False
    matched_paths: set[str] = set()
    for name in cond.names:
        if marking.classify(name) is PathClass.INFINITE:
            needed = True
            any_match = True  # cannot rule the name out statically
            continue
        paths = marking.root_paths(name) or []
        matched = [p for p in paths if compiled.search(p)]
        if matched:
            any_match = True
            matched_paths.update(matched)
        if len(matched) != len(paths):
            needed = True
    return any_match, needed, matched_paths


def _pass_paths_join_elimination(
    plan: QueryPlan, context: PassContext
) -> PassReport:
    name = "paths-join-elimination"
    marking = context.marking
    if marking is None:
        return PassReport(name, False, 0, "no schema marking available")
    removed = 0
    emptied = 0
    witnesses: list[EliminationWitness] = []

    def witness(
        kind: str, cond: PathFilterCond, matched: set[str]
    ) -> EliminationWitness:
        assert cond.names is not None and marking is not None
        return EliminationWitness(
            kind=kind,
            alias=cond.alias,
            paths_alias=cond.paths_alias,
            pattern=tuple(cond.pattern),
            anchored=cond.anchored,
            classes=tuple(
                (n, marking.classify(n).value) for n in sorted(cond.names)
            ),
            matched_paths=tuple(sorted(matched)),
        )

    def decide(cond: PlanCond) -> PlanCond:
        nonlocal removed, emptied
        if not isinstance(cond, PathFilterCond) or cond.mode != "regex":
            return cond
        if cond.names is None:
            return cond
        any_match, needed, matched = _filter_analysis(cond, marking)
        if not any_match:
            emptied += 1
            witnesses.append(witness("unsatisfiable", cond, matched))
            return FalseCond()
        if not needed:
            removed += 1
            witnesses.append(witness("redundant", cond, matched))
            return TrueCond()
        return cond

    for select in iter_selects(plan):
        select.where = _rewrap(rewrite_condition(select.where, decide))
    dropped_scans = _remove_orphan_paths(plan)
    changes = removed + emptied
    detail = (
        f"dropped {removed} redundant filter(s), proved {emptied} "
        f"unsatisfiable, removed {dropped_scans} Paths join(s)"
        if changes
        else "every Paths filter is load-bearing"
    )
    return PassReport(
        name, changes > 0, changes, detail, witnesses=tuple(witnesses)
    )


def _remove_orphan_paths(plan: QueryPlan) -> int:
    """Drop `Paths` links and scans no surviving filter references."""
    removed = 0
    for select in iter_selects(plan):
        referenced = {
            cond.paths_alias
            for cond in iter_conditions(select.where)
            if isinstance(cond, PathFilterCond)
        }

        def unlink(
            cond: PlanCond, referenced: set[str] = referenced
        ) -> PlanCond:
            # Default-arg binding: the closure must capture THIS
            # iteration's reference set, not the loop variable (B023).
            if (
                isinstance(cond, PathsLinkCond)
                and cond.paths_alias not in referenced
            ):
                return TrueCond()
            return cond

        select.where = _rewrap(rewrite_condition(select.where, unlink))
        before = len(select.scans)
        select.scans = [
            scan
            for scan in select.scans
            if not (scan.is_paths and scan.alias not in referenced)
        ]
        removed += before - len(select.scans)
    return removed


# ---------------------------------------------------------------------------
# pass: regex-to-equality (Table 3 + U-P marking)
# ---------------------------------------------------------------------------


def _pass_regex_to_equality(
    plan: QueryPlan, context: PassContext
) -> PassReport:
    name = "regex-to-equality"
    marking = context.marking
    converted = 0

    def convert(cond: PlanCond) -> PlanCond:
        nonlocal converted
        if not isinstance(cond, PathFilterCond) or cond.mode != "regex":
            return cond
        literal = exact_path(list(cond.pattern), cond.anchored)
        if literal is not None:
            cond.mode = "equality"
            cond.literal = literal
            converted += 1
            return cond
        if marking is None or cond.names is None:
            return cond
        if any(
            marking.classify(n) is PathClass.INFINITE for n in cond.names
        ):
            return cond
        any_match, needed, matched = _filter_analysis(cond, marking)
        # `needed` distinguishes this from a filter the elimination pass
        # (when enabled) would have removed outright: only a genuinely
        # restricting filter whose candidates' root paths satisfy the
        # regex in exactly one place collapses to an equality.
        if any_match and needed and len(matched) == 1:
            cond.mode = "equality"
            cond.literal = next(iter(matched))
            converted += 1
        return cond

    for select in iter_selects(plan):
        select.where = _rewrap(rewrite_condition(select.where, convert))
    detail = (
        f"converted {converted} regex filter(s) to path equality"
        if converted
        else "no filter denotes a single literal path"
    )
    return PassReport(name, converted > 0, converted, detail)


# ---------------------------------------------------------------------------
# pass: prune-distinct-order
# ---------------------------------------------------------------------------


def _distinct_redundant(select: LogicalSelect) -> bool:
    """True when the select provably yields unique rows without DISTINCT:
    one element scan, every `Paths` scan tied to it by a top-level 1:1
    ``path_id`` link (elements reference exactly one `Paths` row)."""
    element_scans = [s for s in select.scans if not s.is_paths]
    if len(element_scans) != 1:
        return False
    linked = {
        part.paths_alias
        for part in select.where.parts
        if isinstance(part, PathsLinkCond)
    }
    return all(
        scan.alias in linked for scan in select.scans if scan.is_paths
    )


def _pass_prune_distinct_order(
    plan: QueryPlan, context: PassContext
) -> PassReport:
    name = "prune-distinct-order"
    branches = plan.branches()
    branch_ids = {id(b) for b in branches}
    is_union = isinstance(plan.root, PlanUnion)
    orders = 0
    distincts = 0
    for select in iter_selects(plan):
        if id(select) not in branch_ids and select.order_by:
            # Sub-select bodies (EXISTS / scalar COUNT): ordering is
            # invisible to the outer query, so it is pure overhead.
            select.order_by = []
            orders += 1
    for branch in branches:
        if is_union and branch.order_by:
            # The union's global ORDER BY supersedes per-branch ones
            # (which SQLite would reject around UNION anyway).
            branch.order_by = []
            orders += 1
        if branch.distinct and (is_union or _distinct_redundant(branch)):
            branch.distinct = False
            distincts += 1
    changes = orders + distincts
    detail = (
        f"dropped {orders} ORDER BY clause(s), {distincts} DISTINCT(s)"
        if changes
        else "all DISTINCT/ORDER BY clauses are load-bearing"
    )
    return PassReport(name, changes > 0, changes, detail)


# ---------------------------------------------------------------------------
# pass: dedup-union-branches
# ---------------------------------------------------------------------------


def _collect_aliases(select: LogicalSelect, out: list[str]) -> None:
    for scan in select.scans:
        if scan.alias not in out:
            out.append(scan.alias)
    for cond in iter_conditions(select.where):
        for sub in child_subplans(cond):
            _collect_aliases(sub, out)


def _rename_text(text: str, mapping: dict[str, str]) -> str:
    """Replace ``alias.`` column references (aliases never contain dots,
    so requiring the trailing dot keeps string literals intact)."""
    for alias in sorted(mapping, key=len, reverse=True):
        text = text.replace(f"{alias}.", f"{mapping[alias]}.")
    return text


def _rename_select(select: LogicalSelect, mapping: dict[str, str]) -> None:
    select.columns = [_rename_text(c, mapping) for c in select.columns]
    select.order_by = [_rename_text(o, mapping) for o in select.order_by]
    for scan in select.scans:
        scan.alias = mapping.get(scan.alias, scan.alias)
    for cond in iter_conditions(select.where):
        if isinstance(cond, RawCond):
            cond.sql = _rename_text(cond.sql, mapping)
        elif isinstance(cond, PathFilterCond):
            cond.alias = mapping.get(cond.alias, cond.alias)
            cond.paths_alias = mapping.get(cond.paths_alias, cond.paths_alias)
        elif isinstance(cond, PathsLinkCond):
            cond.owner_alias = mapping.get(cond.owner_alias, cond.owner_alias)
            cond.paths_alias = mapping.get(cond.paths_alias, cond.paths_alias)
        elif isinstance(cond, NameFilterCond):
            cond.alias = mapping.get(cond.alias, cond.alias)
        elif isinstance(cond, StructuralCond):
            cond.context_alias = mapping.get(
                cond.context_alias, cond.context_alias
            )
            cond.target_alias = mapping.get(
                cond.target_alias, cond.target_alias
            )
        elif isinstance(cond, DocEqCond):
            cond.left_alias = mapping.get(cond.left_alias, cond.left_alias)
            cond.right_alias = mapping.get(cond.right_alias, cond.right_alias)
        elif isinstance(cond, LevelCond):
            cond.alias = mapping.get(cond.alias, cond.alias)
            if cond.base_alias is not None:
                cond.base_alias = mapping.get(
                    cond.base_alias, cond.base_alias
                )
        for sub in child_subplans(cond):
            _rename_select(sub, mapping)


def _fingerprint_cond(cond: PlanCond) -> str:
    if isinstance(cond, (AndCond, OrCond)):
        tag = "and" if isinstance(cond, AndCond) else "or"
        inner = ",".join(_fingerprint_cond(p) for p in cond.parts)
        return f"{tag}({inner})"
    if isinstance(cond, NotCond):
        return f"not({_fingerprint_cond(cond.operand)})"
    if isinstance(cond, ExistsCond):
        return f"exists({_fingerprint_select(cond.subplan)})"
    if isinstance(cond, AggregateCountCond):
        subs = ",".join(_fingerprint_select(s) for s in cond.subplans)
        return f"count({subs};{cond.op};{cond.value!r};{cond.offset})"
    if isinstance(cond, PathFilterCond):
        names = sorted(cond.names) if cond.names is not None else None
        return (
            f"pathfilter({cond.alias};{cond.paths_alias};{cond.mode};"
            f"{cond.literal!r};{cond.literals!r};{cond.anchored};"
            f"{cond.pattern!r};{names})"
        )
    # Remaining leaves fully describe themselves in their brief() line.
    return cond.brief()


def _fingerprint_select(select: LogicalSelect) -> str:
    scans = ",".join(f"{s.table} {s.alias}" for s in select.scans)
    return (
        f"select(distinct={select.distinct};cols={select.columns!r};"
        f"from={scans};where={_fingerprint_cond(select.where)};"
        f"order={select.order_by!r})"
    )


def _canonical_key(select: LogicalSelect) -> str:
    """Alias-independent fingerprint of a branch."""
    clone = copy.deepcopy(select)
    aliases: list[str] = []
    _collect_aliases(clone, aliases)
    mapping = {alias: f"§{i}§" for i, alias in enumerate(aliases)}
    _rename_select(clone, mapping)
    return _fingerprint_select(clone)


def _pass_dedup_union_branches(
    plan: QueryPlan, context: PassContext
) -> PassReport:
    name = "dedup-union-branches"
    if not isinstance(plan.root, PlanUnion):
        return PassReport(name, False, 0, "plan is not a union")
    seen: set[str] = set()
    kept: list[LogicalSelect] = []
    merged = 0
    for branch in plan.root.branches:
        key = _canonical_key(branch)
        if key in seen:
            merged += 1
            continue
        seen.add(key)
        kept.append(branch)
    plan.root.branches = kept
    detail = (
        f"merged {merged} duplicate branch(es)"
        if merged
        else "all union branches are distinct"
    )
    return PassReport(name, merged > 0, merged, detail)


# ---------------------------------------------------------------------------
# pass: costed-access-strategy (statistics-driven Table 3)
# ---------------------------------------------------------------------------

#: Hard cap on the IN-list length the access-strategy pass will emit.
_IN_LIMIT = 8
#: The enumerated path set must cover at most this fraction of the
#: estimated `Paths` table for membership probing to beat a regex scan.
_IN_FRACTION = 0.25


def _pass_costed_access_strategy(
    plan: QueryPlan, context: PassContext
) -> PassReport:
    name = "costed-access-strategy"
    summary = context.summary
    marking = context.marking
    if summary is None:
        return PassReport(name, False, 0, "no statistics collected")
    if marking is None:
        return PassReport(name, False, 0, "no schema marking available")
    path_rows = max(summary.path_count, 1)
    converted = 0

    def convert(cond: PlanCond) -> PlanCond:
        nonlocal converted
        if not isinstance(cond, PathFilterCond) or cond.mode != "regex":
            return cond
        if cond.names is None:
            return cond
        if any(
            marking.classify(n) is PathClass.INFINITE for n in cond.names
        ):
            return cond
        any_match, _needed, matched = _filter_analysis(cond, marking)
        if not any_match or not matched:
            return cond  # the elimination pass's business, not ours
        # Schema-complete enumeration: `matched` is exactly the set of
        # `Paths` rows the regex can accept among the filter's candidate
        # labels, so equality/IN against it is semantics-preserving.
        # The summary only decides whether k indexed membership probes
        # beat one regex evaluation per `Paths` row.
        k = len(matched)
        if k > _IN_LIMIT or k > path_rows * _IN_FRACTION:
            return cond
        if k == 1:
            cond.mode = "equality"
            cond.literal = next(iter(matched))
        else:
            cond.mode = "in"
            cond.literals = tuple(sorted(matched))
        converted += 1
        return cond

    for select in iter_selects(plan):
        select.where = _rewrap(rewrite_condition(select.where, convert))
    detail = (
        f"replaced {converted} regex scan(s) with equality/IN probes "
        f"(~{path_rows}-row Paths table)"
        if converted
        else "regex scans remain the cheapest access strategy"
    )
    return PassReport(name, converted > 0, converted, detail)


# ---------------------------------------------------------------------------
# pass: costed-join-order (smallest estimated input first)
# ---------------------------------------------------------------------------

#: Minimum factor by which the new leading scan's estimate must beat the
#: current one before a reorder is worth the plan churn.
_REORDER_FACTOR = 2.0


def _scan_groups(
    select: LogicalSelect,
) -> Optional[list[tuple[Scan, list[Scan]]]]:
    """Group each element scan with its linked `Paths` scans, in the
    select's current scan order.  ``None`` when the shape is unexpected
    (a `Paths` scan with no top-level link to a local element scan)."""
    element_order = [s for s in select.scans if not s.is_paths]
    groups: dict[str, list[Scan]] = {
        s.alias: [] for s in element_order
    }
    owners: dict[str, str] = {}
    for part in select.where.parts:
        if isinstance(part, PathsLinkCond):
            owners.setdefault(part.paths_alias, part.owner_alias)
    for scan in select.scans:
        if not scan.is_paths:
            continue
        owner = owners.get(scan.alias)
        if owner is None or owner not in groups:
            return None
        groups[owner].append(scan)
    return [(scan, groups[scan.alias]) for scan in element_order]


def _condition_alias_pairs(
    select: LogicalSelect,
) -> tuple[list[tuple[str, str]], set[frozenset[str]]]:
    """Binding-orientation constraints and the join graph of a select.

    Returns ``(ordered, adjacency)``: ``ordered`` lists alias pairs
    whose current relative scan order must be preserved — every
    structural (Dewey) join, because CROSS JOIN order is the nested-loop
    order and the probe side must stay inner — and ``adjacency`` holds
    every two-alias join edge (structural, FK, doc-equality, relative
    level), used to prefer connected orders.
    """
    local = {s.alias for s in select.scans}
    ordered: list[tuple[str, str]] = []
    adjacency: set[frozenset[str]] = set()

    def edge(a: str, b: str) -> None:
        if a in local and b in local and a != b:
            adjacency.add(frozenset((a, b)))

    for part in select.where.parts:
        if isinstance(part, StructuralCond):
            a, b = part.context_alias, part.target_alias
            edge(a, b)
            if a in local and b in local and a != b:
                ordered.append((a, b))
        elif isinstance(part, DocEqCond):
            edge(part.left_alias, part.right_alias)
        elif isinstance(part, LevelCond):
            if part.base_alias is not None:
                edge(part.alias, part.base_alias)
        elif isinstance(part, RawCond):
            refs = set(_RAW_ALIAS_REF.findall(part.sql))
            refs &= local
            if len(refs) == 2:
                first, second = sorted(refs)
                edge(first, second)
    return ordered, adjacency


_RAW_ALIAS_REF = re.compile(r"\b([A-Za-z_][A-Za-z0-9_]*)\.")


def _reorder_select(
    select: LogicalSelect, estimator: CardinalityEstimator
) -> Optional[ReorderWitness]:
    """Reorder one select's scans smallest-estimate-first, or ``None``.

    Greedy: among the element-scan groups whose ordering predecessors
    (from structural-join orientations) are already placed, prefer ones
    joined to an already-placed scan, and pick the smallest estimate.
    The result is applied only when it changes the order AND the new
    leading scan beats the old one by :data:`_REORDER_FACTOR`.
    """
    groups = _scan_groups(select)
    if groups is None or len(groups) < 2:
        return None
    ordered, adjacency = _condition_alias_pairs(select)
    aliases = [scan.alias for scan, _ in groups]
    estimates = {
        scan.alias: estimator.scan_rows(select, scan)
        for scan, _ in groups
    }
    predecessors: dict[str, set[str]] = {a: set() for a in aliases}
    position = {a: i for i, a in enumerate(aliases)}
    for a, b in ordered:
        first, second = (a, b) if position[a] < position[b] else (b, a)
        predecessors[second].add(first)
    placed: set[str] = set()
    new_order: list[str] = []
    remaining = list(aliases)
    while remaining:
        eligible = [
            a for a in remaining if predecessors[a] <= placed
        ]
        if not eligible:  # pragma: no cover - orientation cycles can't occur
            eligible = list(remaining)
        connected = [
            a
            for a in eligible
            if not placed
            or any(frozenset((a, p)) in adjacency for p in placed)
        ]
        pool = connected or eligible
        pick = min(pool, key=lambda a: (estimates[a], position[a]))
        new_order.append(pick)
        placed.add(pick)
        remaining.remove(pick)
    if new_order == aliases:
        return None
    if estimates[aliases[0]] < _REORDER_FACTOR * estimates[new_order[0]]:
        return None
    before = tuple((s.table, s.alias) for s in select.scans)
    by_alias = {scan.alias: (scan, paths) for scan, paths in groups}
    scans: list[Scan] = []
    for alias in new_order:
        scan, paths = by_alias[alias]
        scans.append(scan)
        scans.extend(paths)
    select.scans = scans
    return ReorderWitness(
        kind="join-order",
        before=before,
        after=tuple((s.table, s.alias) for s in select.scans),
        ordered_pairs=tuple(ordered),
        estimates=tuple(estimates[a] for a in new_order),
    )


def _pass_costed_join_order(
    plan: QueryPlan, context: PassContext
) -> PassReport:
    name = "costed-join-order"
    summary = context.summary
    if summary is None:
        return PassReport(name, False, 0, "no statistics collected")
    estimator = CardinalityEstimator(summary)
    witnesses: list[ReorderWitness] = []
    for select in iter_selects(plan):
        witness = _reorder_select(select, estimator)
        if witness is not None:
            witnesses.append(witness)
    detail = (
        f"reordered scans in {len(witnesses)} select(s), "
        "smallest estimated input first"
        if witnesses
        else "every select already leads with its smallest input"
    )
    return PassReport(
        name,
        bool(witnesses),
        len(witnesses),
        detail,
        reorders=tuple(witnesses),
    )


# ---------------------------------------------------------------------------
# pass: costed-union-order (long poles first)
# ---------------------------------------------------------------------------


def _branch_signature(branch: LogicalSelect) -> str:
    if branch.scans:
        scan = branch.scans[0]
        return f"{scan.table} {scan.alias}"
    return "<no scans>"


def _pass_costed_union_order(
    plan: QueryPlan, context: PassContext
) -> PassReport:
    name = "costed-union-order"
    summary = context.summary
    if summary is None:
        return PassReport(name, False, 0, "no statistics collected")
    root = plan.root
    if not isinstance(root, PlanUnion) or len(root.branches) < 2:
        return PassReport(name, False, 0, "plan is not a multi-branch union")
    estimator = CardinalityEstimator(summary)
    estimates = [estimator.select_rows(b) for b in root.branches]
    order = sorted(
        range(len(root.branches)), key=lambda i: (-estimates[i], i)
    )
    if order == list(range(len(root.branches))):
        return PassReport(
            name, False, 0, "branches already run largest-estimate first"
        )
    witness = ReorderWitness(
        kind="union-order",
        before=tuple(
            (str(i), _branch_signature(b))
            for i, b in enumerate(root.branches)
        ),
        after=tuple(
            (str(i), _branch_signature(root.branches[i])) for i in order
        ),
        estimates=tuple(estimates[i] for i in order),
    )
    root.branches = [root.branches[i] for i in order]
    return PassReport(
        name,
        True,
        1,
        "reordered union branches largest-estimate first "
        "(UNION dedup + global ORDER BY make branch order irrelevant "
        "to results)",
        reorders=(witness,),
    )


# ---------------------------------------------------------------------------
# registry and pipeline
# ---------------------------------------------------------------------------


PASSES: dict[str, Callable[[QueryPlan, PassContext], PassReport]] = {
    "paths-join-elimination": _pass_paths_join_elimination,
    "regex-to-equality": _pass_regex_to_equality,
    "prune-distinct-order": _pass_prune_distinct_order,
    "dedup-union-branches": _pass_dedup_union_branches,
    "costed-access-strategy": _pass_costed_access_strategy,
    "costed-join-order": _pass_costed_join_order,
    "costed-union-order": _pass_costed_union_order,
}

#: All passes, in the order the default pipeline runs them.
DEFAULT_PASS_NAMES: tuple[str, ...] = tuple(PASSES)


@dataclass
class PassPipeline:
    """An ordered, validated selection of optimizer passes."""

    names: tuple[str, ...] = field(default=DEFAULT_PASS_NAMES)

    def __post_init__(self) -> None:
        self.names = tuple(self.names)
        unknown = [n for n in self.names if n not in PASSES]
        if unknown:
            raise TranslationError(
                "unknown optimizer pass(es): "
                + ", ".join(sorted(unknown))
                + f" (available: {', '.join(PASSES)})"
            )

    def run(
        self, plan: QueryPlan, context: Optional[PassContext] = None
    ) -> tuple[QueryPlan, list[PassReport]]:
        """Fold, then run each pass (folding after every one)."""
        if context is None:
            context = PassContext()
        fold_plan(plan)
        reports: list[PassReport] = []
        for pass_name in self.names:
            reports.append(PASSES[pass_name](plan, context))
            fold_plan(plan)
        return plan, reports


def resolve_pass_names(
    passes: Optional[Sequence[str]], path_filter_optimization: bool
) -> tuple[str, ...]:
    """The pass list an engine runs.

    ``passes`` (when given) wins; otherwise the default list, minus the
    Section 4.5 elimination pass when its ablation switch is off.
    """
    if passes is not None:
        return tuple(passes)
    if path_filter_optimization:
        return DEFAULT_PASS_NAMES
    return tuple(
        n for n in DEFAULT_PASS_NAMES if n != "paths-join-elimination"
    )
