"""A small relational-algebra-free SQL statement model.

The PPF translator (and the baseline translators) build
:class:`SelectStatement` objects — flat ``SELECT DISTINCT ... FROM r1,
r2, ... WHERE c1 AND c2 ... ORDER BY ...`` statements with a condition
*tree* (AND/OR/NOT/EXISTS) exactly mirroring the paper's Tables 3–6 — and
render them to SQLite SQL text.
"""

from repro.sqlgen.ast import (
    And,
    Comparison,
    Condition,
    Exists,
    Not,
    Or,
    Raw,
    SelectStatement,
    TableRef,
    UnionStatement,
)
from repro.sqlgen.dialect import (
    DEFAULT_DIALECT,
    AnsiDialect,
    SQLiteDialect,
)
from repro.sqlgen.render import (
    blob_literal,
    number_literal,
    render_condition,
    render_statement,
    string_literal,
)

__all__ = [
    "And",
    "AnsiDialect",
    "Comparison",
    "Condition",
    "DEFAULT_DIALECT",
    "Exists",
    "SQLiteDialect",
    "Not",
    "Or",
    "Raw",
    "SelectStatement",
    "TableRef",
    "UnionStatement",
    "blob_literal",
    "number_literal",
    "render_condition",
    "render_statement",
    "string_literal",
]
