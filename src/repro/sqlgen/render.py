"""Rendering of the SQL AST to SQLite text, plus literal helpers.

Literals are inlined (the paper's statements inline them too); strings are
quote-doubled, blobs use ``X'..'`` hex literals.  Regular-expression path
filters render as calls to the ``regexp_like(value, pattern)`` user
function that :class:`repro.storage.database.Database` registers, matching
the paper's Oracle ``REGEXP_LIKE`` call shape.
"""

from __future__ import annotations

from repro.sqlgen.ast import (
    And,
    Comparison,
    Condition,
    Exists,
    Not,
    Or,
    Raw,
    SelectStatement,
    UnionStatement,
)


def string_literal(value: str) -> str:
    """A safely quoted SQL string literal."""
    return "'" + value.replace("'", "''") + "'"


def number_literal(value: float) -> str:
    """A SQL numeric literal (integers render without a decimal point)."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def blob_literal(value: bytes) -> str:
    """A SQLite hex blob literal, e.g. ``X'000001'``."""
    return "X'" + value.hex().upper() + "'"


def render_condition(condition: Condition, indent: int = 0) -> str:
    """Render one condition node; composite nodes parenthesize children."""
    if isinstance(condition, Raw):
        return condition.sql
    if isinstance(condition, Comparison):
        return f"{condition.left} {condition.op} {condition.right}"
    if isinstance(condition, And):
        if not condition.parts:
            return "1=1"
        rendered = [render_condition(p, indent) for p in condition.parts]
        if len(rendered) == 1:
            return rendered[0]
        return "(" + " AND ".join(rendered) + ")"
    if isinstance(condition, Or):
        if not condition.parts:
            return "1=0"
        rendered = [render_condition(p, indent) for p in condition.parts]
        if len(rendered) == 1:
            return rendered[0]
        return "(" + " OR ".join(rendered) + ")"
    if isinstance(condition, Not):
        return "NOT " + _parenthesized(condition.operand, indent)
    if isinstance(condition, Exists):
        inner = render_select(condition.subquery, indent + 1)
        return f"EXISTS ({inner})"
    raise TypeError(f"unknown condition node {condition!r}")


def _parenthesized(condition: Condition, indent: int) -> str:
    rendered = render_condition(condition, indent)
    if rendered.startswith("(") or rendered.startswith("EXISTS"):
        return rendered
    return f"({rendered})"


def render_select(statement: SelectStatement, indent: int = 0) -> str:
    """Render one SELECT without a trailing semicolon."""
    head = "SELECT DISTINCT" if statement.distinct else "SELECT"
    columns = ", ".join(statement.columns) if statement.columns else "*"
    # CROSS JOIN pins the binding order (semantically identical to a
    # comma join in SQLite); the translator ordered the FROM clause so
    # each Dewey range probe sees its driving relation first.
    tables = " CROSS JOIN ".join(ref.sql() for ref in statement.tables)
    parts = [f"{head} {columns}", f"FROM {tables}"]
    if statement.where.parts:
        where = render_condition(statement.where, indent)
        # Drop the outermost parentheses of a top-level conjunction for
        # readability.
        if (
            len(statement.where.parts) > 1
            and where.startswith("(")
            and where.endswith(")")
        ):
            where = where[1:-1]
        parts.append(f"WHERE {where}")
    if statement.order_by:
        parts.append("ORDER BY " + ", ".join(statement.order_by))
    pad = "\n" + "  " * indent
    return pad.join(parts)


def render_statement(
    statement: SelectStatement | UnionStatement, indent: int = 0
) -> str:
    """Render a statement, including UNION splits."""
    if isinstance(statement, SelectStatement):
        return render_select(statement, indent)
    rendered = "\nUNION\n".join(
        render_select(branch, indent) for branch in statement.branches
    )
    if statement.order_by:
        rendered += "\nORDER BY " + ", ".join(statement.order_by)
    return rendered
