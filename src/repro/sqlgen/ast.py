"""SQL statement AST used by every translator in the library."""

from __future__ import annotations

from dataclasses import dataclass, field


class Condition:
    """Base class of WHERE-clause condition nodes."""


@dataclass
class Raw(Condition):
    """An opaque SQL boolean expression, e.g. ``B.par_id = A.id``."""

    sql: str


@dataclass
class Comparison(Condition):
    """``left op right`` over two rendered SQL expressions."""

    left: str
    op: str
    right: str


@dataclass
class And(Condition):
    """Conjunction; an empty conjunction is TRUE."""

    parts: list[Condition] = field(default_factory=list)

    def add(self, condition: Condition | None) -> None:
        """Append a condition, flattening nested ANDs recursively (so
        ``a AND (b AND c)`` renders without redundant parentheses);
        ``None`` is a no-op."""
        if condition is None:
            return
        if isinstance(condition, And):
            for part in condition.parts:
                self.add(part)
        else:
            self.parts.append(condition)


@dataclass
class Or(Condition):
    """Disjunction; an empty disjunction is FALSE."""

    parts: list[Condition] = field(default_factory=list)

    def add(self, condition: Condition | None) -> None:
        """Append a condition, flattening nested ORs recursively (so
        ``a OR (b OR c)`` renders without redundant parentheses);
        ``None`` is a no-op."""
        if condition is None:
            return
        if isinstance(condition, Or):
            for part in condition.parts:
                self.add(part)
        else:
            self.parts.append(condition)


@dataclass
class Not(Condition):
    """Negation of a condition."""

    operand: Condition


@dataclass
class Exists(Condition):
    """``EXISTS (subselect)`` — the paper's predicate-clause encoding."""

    subquery: "SelectStatement"


@dataclass
class TableRef:
    """One FROM-clause entry: ``table [AS] alias``."""

    table: str
    alias: str

    def sql(self) -> str:
        """The FROM-clause fragment for this entry."""
        if self.table == self.alias:
            return self.table
        return f"{self.table} {self.alias}"


@dataclass
class SelectStatement:
    """A flat select with comma-joined tables, per the paper's examples."""

    columns: list[str] = field(default_factory=list)
    tables: list[TableRef] = field(default_factory=list)
    where: And = field(default_factory=And)
    distinct: bool = False
    order_by: list[str] = field(default_factory=list)

    def add_table(self, table: str, alias: str | None = None) -> TableRef:
        """Add a FROM entry (idempotent per alias) and return its ref."""
        alias = alias or table
        for existing in self.tables:
            if existing.alias == alias:
                return existing
        ref = TableRef(table, alias)
        self.tables.append(ref)
        return ref

    def has_alias(self, alias: str) -> bool:
        """Whether the FROM clause already binds ``alias``."""
        return any(ref.alias == alias for ref in self.tables)

    def move_before(self, alias: str, reference: str) -> None:
        """Reorder the FROM clause so ``alias`` precedes ``reference``.

        FROM entries render with ``CROSS JOIN``, which SQLite treats as a
        binding-order directive: a Dewey *ancestor* join is only
        index-friendly when the ancestor side is scanned first and the
        descendant side range-probed, so the translator moves the target
        relation of upward joins in front of its context.  When
        ``reference`` is not in this statement (a correlated outer
        alias), ``alias`` moves to the front.
        """
        index = next(
            (i for i, ref in enumerate(self.tables) if ref.alias == alias),
            None,
        )
        if index is None:
            return
        ref = self.tables.pop(index)
        target = next(
            (
                i
                for i, existing in enumerate(self.tables)
                if existing.alias == reference
            ),
            0,
        )
        self.tables.insert(target, ref)


@dataclass
class UnionStatement:
    """``stmt UNION stmt ...`` — the paper's *SQL splitting* (Section 4.4)."""

    branches: list[SelectStatement]
    order_by: list[str] = field(default_factory=list)
