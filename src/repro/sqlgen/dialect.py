"""SQL dialects: the backend-specific half of statement lowering.

The logical plan (:mod:`repro.plan`) is backend-neutral; everything that
depends on the concrete relational system is funnelled through a
:class:`Dialect` when the plan is lowered to a :class:`~repro.sqlgen.
SelectStatement`:

* literal and identifier quoting,
* the regular-expression predicate call (the paper uses Oracle's
  ``REGEXP_LIKE``; our SQLite registers a ``regexp_like`` user function
  of the same shape),
* Dewey-comparison rendering (Table 2's lexicographic conditions, the
  ``length(dewey_pos)`` level arithmetic, and the descendant
  upper-bound concatenation), and
* planner hints such as SQLite's unary-``+`` index-avoidance trick on
  cross-document equality columns.

:class:`AnsiDialect` is the generic base — portable SQL with no hints —
and :class:`SQLiteDialect` the dialect every shipped engine uses today.
A future backend (the ROADMAP's multi-backend direction) subclasses
:class:`AnsiDialect` and overrides only what differs.
"""

from __future__ import annotations

import re

from repro.dewey.relations import sql_condition
from repro.sqlgen.render import blob_literal, number_literal, string_literal

_SAFE_IDENTIFIER = re.compile(r"^[A-Za-z_][A-Za-z0-9_]*$")


class AnsiDialect:
    """Generic ANSI-flavoured SQL rendering (no backend hints)."""

    #: Dialect name, used in cache fingerprints and ``explain`` output.
    name: str = "ansi"

    # -- quoting -----------------------------------------------------------

    def quote_identifier(self, identifier: str) -> str:
        """Quote ``identifier`` when it is not a plain SQL name."""
        if _SAFE_IDENTIFIER.match(identifier):
            return identifier
        return '"' + identifier.replace('"', '""') + '"'

    def string_literal(self, value: str) -> str:
        """A safely quoted string literal (ANSI quote doubling)."""
        return string_literal(value)

    def number_literal(self, value: float) -> str:
        """A numeric literal; integers render without a decimal point."""
        return number_literal(value)

    def blob_literal(self, value: bytes) -> str:
        """A binary-string literal (``X'..'`` hex form)."""
        return blob_literal(value)

    # -- path filters ------------------------------------------------------

    def regexp_match(self, expression: str, pattern: str) -> str:
        """Boolean SQL testing ``expression`` against a regex pattern."""
        return f"REGEXP_LIKE({expression}, {self.string_literal(pattern)})"

    def path_equality(self, expression: str, path: str) -> str:
        """Boolean SQL testing ``expression`` against a literal path."""
        return f"{expression} = {self.string_literal(path)}"

    def path_membership(self, expression: str, paths: "tuple[str, ...]") -> str:
        """Boolean SQL testing ``expression`` against a small literal
        path set (the costed access-strategy's split between one
        equality and a full regex scan)."""
        if len(paths) == 1:
            return self.path_equality(expression, paths[0])
        rendered = ", ".join(self.string_literal(p) for p in paths)
        return f"{expression} IN ({rendered})"

    # -- Dewey comparisons -------------------------------------------------

    def dewey_axis_condition(
        self, axis: str, context_alias: str, target_alias: str
    ) -> str:
        """Table 2 structural condition joining target to context rows."""
        return sql_condition(axis, context_alias, target_alias)

    def dewey_level(self, alias: str) -> str:
        """SQL expression for the encoded length of a Dewey position."""
        return f"length({alias}.dewey_pos)"

    # -- planner hints -----------------------------------------------------

    def indexed_column(self, column: str) -> str:
        """Render a column the planner wants *kept out* of index
        selection (no-op in ANSI SQL)."""
        return column

    def doc_equality(self, left_alias: str, right_alias: str) -> str:
        """Same-document guard between two relation aliases."""
        left = self.indexed_column(f"{left_alias}.doc_id")
        right = self.indexed_column(f"{right_alias}.doc_id")
        return f"{left} = {right}"


class SQLiteDialect(AnsiDialect):
    """The dialect of :mod:`repro.storage.database` connections.

    Differences from the ANSI base:

    * regex filtering calls the registered ``regexp_like`` user function
      (lower-case, matching the paper's Oracle call shape),
    * same-document equality prefixes both sides with unary ``+`` so
      SQLite's planner never picks the low-selectivity ``doc_id`` index
      over the Dewey/path indexes.
    """

    name = "sqlite"

    def regexp_match(self, expression: str, pattern: str) -> str:
        return f"regexp_like({expression}, {self.string_literal(pattern)})"

    def indexed_column(self, column: str) -> str:
        return f"+{column}"


#: The default dialect of every shipped engine.
DEFAULT_DIALECT = SQLiteDialect()
