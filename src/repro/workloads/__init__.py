"""Synthetic benchmark workloads reproducing the paper's evaluation data.

* :mod:`repro.workloads.xmark`     — an XMark-like auction-site document
  generator (stand-in for the XMark generator's 12 MB / 113 MB files),
* :mod:`repro.workloads.xpathmark` — the XPathMark query subset of
  Appendix B plus the join query Q-A,
* :mod:`repro.workloads.dblp`      — a DBLP-like bibliography generator
  and the QD1–QD5 queries of Table 7.
"""

from repro.workloads.xmark import XMarkConfig, generate_xmark
from repro.workloads.xpathmark import (
    XPATHMARK_QUERIES,
    BenchmarkQuery,
    xpathmark_query,
)
from repro.workloads.dblp import DBLP_QUERIES, DBLPConfig, generate_dblp

__all__ = [
    "BenchmarkQuery",
    "DBLP_QUERIES",
    "DBLPConfig",
    "XMarkConfig",
    "XPATHMARK_QUERIES",
    "generate_dblp",
    "generate_xmark",
    "xpathmark_query",
]
