"""Deterministic DBLP-like bibliography generator and the Table 7 queries.

The real evaluation used the 130 MB DBLP XML database; this generator
reproduces the structural features QD1–QD5 exercise:

* ``inproceedings``/``article``/``book`` entries with ``author+`` before
  ``title`` (QD1's ``preceding-sibling::author``),
* markup inside titles — ``sup``, ``sub`` and ``i``, including the
  ``article//title/sub/sup/i`` nesting QD4 matches,
* numeric ``year`` elements (QD2's range predicate),
* author overlap between books and inproceedings (QD5's value join),
* the exact author name ``'Harold G. Longbotham'`` on a few entries
  (QD1's literal).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmltree.builder import DocumentBuilder
from repro.xmltree.nodes import Document
from repro.workloads.xpathmark import BenchmarkQuery

_TOPICS = (
    "indexing query optimization shredding storage caching recovery "
    "replication integration warehousing mining streams encoding joins"
).split()

_VENUES = ["SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM", "PODS"]

_JOURNALS = ["TODS", "VLDBJ", "TKDE", "Inf. Syst."]

_FIRST = (
    "Alice Bob Carol David Erika Frank Grace Henri Ilse Jack Karin Luis "
    "Maria Nikos Olga Pavel Quinn Rosa Stefan Tina"
).split()

_LAST = (
    "Abiteboul Bernstein Codd Date Elmasri Franklin Gray Haas Ioannidis "
    "Jagadish Kossmann Lehman Mohan Naughton Olken Papakonstantinou"
).split()

#: The literal author QD1 searches for.
SPECIAL_AUTHOR = "Harold G. Longbotham"


@dataclass
class DBLPConfig:
    """Sizing knobs; counts scale linearly with ``scale``."""

    scale: float = 1.0
    seed: int = 7
    inproceedings: int = 60
    articles: int = 30
    books: int = 10

    def scaled(self, base: int) -> int:
        return max(1, round(base * self.scale))


def generate_dblp(config: DBLPConfig | None = None) -> Document:
    """Generate one bibliography document."""
    config = config or DBLPConfig()
    rng = random.Random(config.seed)
    builder = DocumentBuilder("dblp")
    gen = _Generator(config, rng, builder)
    gen.run()
    return builder.finish(name="dblp")


class _Generator:
    def __init__(
        self, config: DBLPConfig, rng: random.Random, b: DocumentBuilder
    ):
        self.config = config
        self.rng = rng
        self.b = b
        #: Author pool shared by all publication kinds (QD5 join hook).
        self.pool = [
            f"{first} {last}" for first in _FIRST for last in _LAST
        ]

    def author_names(self, count: int) -> list[str]:
        return [self.rng.choice(self.pool) for _ in range(count)]

    def title_words(self) -> str:
        return (
            f"{self.rng.choice(_TOPICS).capitalize()} techniques for "
            f"{self.rng.choice(_TOPICS)} in {self.rng.choice(_TOPICS)}"
        )

    def title(self, markup: str | None) -> None:
        """A title, optionally with sup/sub/i markup.

        ``markup`` is ``None``, ``'sup'`` (title/sup, QD2/QD3),
        ``'sub-i'`` (title/sub/sup/i, QD4's article shape) or ``'i'``.
        """
        with self.b.element("title"):
            self.b.text(self.title_words())
            if markup == "sup":
                self.b.leaf("sup", str(self.rng.randint(2, 9)))
            elif markup == "i":
                self.b.leaf("i", self.rng.choice(_TOPICS))
            elif markup == "sub-i":
                with self.b.element("sub"):
                    self.b.text("x")
                    with self.b.element("sup"):
                        self.b.text("k")
                        self.b.leaf("i", "n")
            self.b.text(".")

    def run(self) -> None:
        n_inproc = self.config.scaled(self.config.inproceedings)
        n_articles = self.config.scaled(self.config.articles)
        n_books = self.config.scaled(self.config.books)
        for index in range(n_inproc):
            self.inproceedings(index)
        for index in range(n_articles):
            self.article(index)
        for index in range(n_books):
            self.book(index)

    def inproceedings(self, index: int) -> None:
        with self.b.element("inproceedings", key=f"conf/x/{index}"):
            authors = self.author_names(self.rng.randint(1, 3))
            if index % 17 == 0:
                authors[0] = SPECIAL_AUTHOR
            for name in authors:
                self.b.leaf("author", name)
            # Roughly a third of conference titles carry superscripts.
            markup = "sup" if index % 3 == 0 else None
            self.title(markup)
            self.b.leaf("pages", f"{index * 10 + 1}-{index * 10 + 12}")
            self.b.leaf("year", str(1988 + index % 16))
            self.b.leaf("booktitle", self.rng.choice(_VENUES))
            self.b.leaf("url", f"db/conf/x/{index}.html")

    def article(self, index: int) -> None:
        with self.b.element("article", key=f"journals/x/{index}"):
            for name in self.author_names(self.rng.randint(1, 3)):
                self.b.leaf("author", name)
            if index % 7 == 0:
                markup = "sub-i"  # the QD4 shape
            elif index % 4 == 0:
                markup = "i"
            else:
                markup = None
            self.title(markup)
            self.b.leaf("journal", self.rng.choice(_JOURNALS))
            self.b.leaf("volume", str(1 + index % 30))
            self.b.leaf("year", str(1990 + index % 14))

    def book(self, index: int) -> None:
        with self.b.element("book", key=f"books/x/{index}"):
            for name in self.author_names(self.rng.randint(1, 2)):
                self.b.leaf("author", name)
            self.title(None)
            self.b.leaf("publisher", "Example Press")
            self.b.leaf("year", str(1992 + index % 12))
            self.b.leaf("isbn", f"0-000-{index:05d}-0")


DBLP_QUERIES: list[BenchmarkQuery] = [
    BenchmarkQuery(
        "QD1",
        "//inproceedings/title"
        f"[preceding-sibling::author = '{SPECIAL_AUTHOR}']",
        "preceding-sibling value predicate",
    ),
    BenchmarkQuery(
        "QD2",
        "/dblp/inproceedings[year>=1994]//sup",
        "range predicate with descendant step",
    ),
    BenchmarkQuery(
        "QD3", "/dblp/inproceedings/title/sup", "plain child path"
    ),
    BenchmarkQuery(
        "QD4",
        "//i[parent::*/parent::sub/ancestor::article]",
        "backward-path-only predicate",
    ),
    BenchmarkQuery(
        "QD5",
        "/dblp/inproceedings[author=/dblp/book/author]/title",
        "value join against an absolute path",
    ),
]
