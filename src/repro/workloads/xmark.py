"""Deterministic XMark-like auction-site document generator.

Reproduces the structural features of the XMark benchmark schema that the
XPathMark query subset (Appendix B) exercises: six regions with items,
recursive ``parlist``/``listitem`` descriptions with marked-up ``text``
(``bold``/``keyword``/``emph``), item mailboxes, open auctions with
bidders and intervals, closed auctions with annotations, and people with
optional address/phone/homepage.  The generator is seeded and fully
deterministic; :class:`XMarkConfig.scale` grows every population linearly
so two documents at scales ``s`` and ``10 s`` mirror the paper's 12 MB vs
113 MB pair.

Guaranteed query hooks (so every benchmark query has non-trivial
results):

* ``item0`` exists in the first region and ``open_auction0`` has several
  bidders (Q9, Q10, Q21),
* every eighth open auction's first bidder date equals its
  ``interval/start`` (the Q-A value join),
* some auctions bid ``person0`` before ``person1`` (Q11),
* recursion depth of ``parlist`` inside ``listitem`` is bounded by
  :attr:`XMarkConfig.max_nesting` (document recursion stays within what
  the naive per-step baseline can expand).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xmltree.builder import DocumentBuilder
from repro.xmltree.nodes import Document

_REGIONS = ["africa", "asia", "australia", "europe", "namerica", "samerica"]

_WORDS = (
    "great auction vintage clock silver brass copper rare antique fine "
    "carved wooden ivory painted glass ceramic woven silk linen cotton "
    "ornate gilded heavy light large small early late signed unsigned "
    "museum quality estate collection original restored working condition"
).split()

_KEYWORDS = (
    "bargain collectible pristine heirloom artisan certified appraised "
    "auctioned exclusive limited premium classic"
).split()

_CITIES = (
    "Athens Berlin Cairo Delhi Lima Osaka Paris Quito Sydney Toronto"
).split()

_COUNTRIES = "Greece Germany Egypt India Peru Japan France Ecuador Australia Canada".split()

_FIRST = "Ada Ben Cleo Dan Eva Finn Gia Hugo Iris Jon Kira Leo Mia Noor".split()
_LAST = "Avery Brook Chen Diaz Evans Frey Garza Haas Iqbal Jones Kemp Lund".split()


@dataclass
class XMarkConfig:
    """Sizing knobs for the generator (all counts scale linearly)."""

    scale: float = 1.0
    seed: int = 42
    items_per_region: int = 6
    people: int = 25
    open_auctions: int = 12
    closed_auctions: int = 8
    categories: int = 5
    #: Maximum ``parlist``-inside-``listitem`` recursion depth.
    max_nesting: int = 2

    def scaled(self, base: int) -> int:
        return max(1, round(base * self.scale))


def generate_xmark(config: XMarkConfig | None = None) -> Document:
    """Generate one auction-site document."""
    config = config or XMarkConfig()
    rng = random.Random(config.seed)
    gen = _Generator(config, rng)
    return gen.build()


class _Generator:
    def __init__(self, config: XMarkConfig, rng: random.Random):
        self.config = config
        self.rng = rng
        self.n_items = config.scaled(config.items_per_region)
        self.n_people = config.scaled(config.people)
        self.n_open = config.scaled(config.open_auctions)
        self.n_closed = config.scaled(config.closed_auctions)
        self.n_categories = config.scaled(config.categories)
        self.total_items = self.n_items * len(_REGIONS)
        self._item_seq = 0

    # -- primitives ----------------------------------------------------------

    def words(self, low: int, high: int) -> str:
        count = self.rng.randint(low, high)
        return " ".join(self.rng.choice(_WORDS) for _ in range(count))

    def date(self) -> str:
        return (
            f"{self.rng.randint(1, 12):02d}/"
            f"{self.rng.randint(1, 28):02d}/"
            f"{self.rng.randint(1998, 2004)}"
        )

    def time(self) -> str:
        return f"{self.rng.randint(0, 23):02d}:{self.rng.randint(0, 59):02d}:00"

    def person_ref(self) -> str:
        return f"person{self.rng.randrange(self.n_people)}"

    def person_name(self, index: int) -> str:
        return (
            f"{_FIRST[index % len(_FIRST)]} "
            f"{_LAST[(index // len(_FIRST)) % len(_LAST)]}"
        )

    # -- marked-up text -------------------------------------------------------

    def text_block(self, b: DocumentBuilder, keyword_chance: float = 0.6) -> None:
        """A ``text`` element with optional bold/keyword/emph markup."""
        with b.element("text"):
            b.text(self.words(3, 8) + " ")
            if self.rng.random() < keyword_chance:
                b.leaf("keyword", self.rng.choice(_KEYWORDS))
                b.text(" " + self.words(1, 4))
            if self.rng.random() < 0.3:
                with b.element("bold"):
                    b.text(self.words(1, 3))
                    if self.rng.random() < 0.4:
                        b.leaf("keyword", self.rng.choice(_KEYWORDS))
            if self.rng.random() < 0.2:
                b.leaf("emph", self.words(1, 3))

    def parlist(self, b: DocumentBuilder, depth: int) -> None:
        with b.element("parlist"):
            for _ in range(self.rng.randint(1, 3)):
                with b.element("listitem"):
                    if (
                        depth < self.config.max_nesting
                        and self.rng.random() < 0.35
                    ):
                        self.parlist(b, depth + 1)
                    else:
                        self.text_block(b)

    def description(self, b: DocumentBuilder) -> None:
        with b.element("description"):
            if self.rng.random() < 0.6:
                self.parlist(b, depth=1)
            else:
                self.text_block(b)

    # -- site sections -----------------------------------------------------------

    def build(self) -> Document:
        b = DocumentBuilder("site")
        self.regions(b)
        self.categories(b)
        self.catgraph(b)
        self.people(b)
        self.open_auctions(b)
        self.closed_auctions(b)
        return b.finish(name="xmark")

    def regions(self, b: DocumentBuilder) -> None:
        with b.element("regions"):
            for region in _REGIONS:
                with b.element(region):
                    for _ in range(self.n_items):
                        self.item(b)

    def item(self, b: DocumentBuilder) -> None:
        attrs = {"id": f"item{self._item_seq}"}
        self._item_seq += 1
        if self.rng.random() < 0.25:
            attrs["featured"] = "yes"
        with b.element("item", **attrs):
            b.leaf("location", self.rng.choice(_COUNTRIES))
            b.leaf("quantity", str(self.rng.randint(1, 5)))
            b.leaf("name", self.words(2, 4))
            with b.element("payment"):
                b.text("Creditcard")
            self.description(b)
            with b.element("shipping"):
                b.text("Will ship internationally")
            for _ in range(self.rng.randint(0, 2)):
                b.leaf(
                    "incategory",
                    category=f"category{self.rng.randrange(self.n_categories)}",
                )
            with b.element("mailbox"):
                for _ in range(self.rng.randint(0, 2)):
                    with b.element("mail"):
                        b.leaf("from", self.person_name(self.rng.randrange(50)))
                        b.leaf("to", self.person_name(self.rng.randrange(50)))
                        b.leaf("date", self.date())
                        self.text_block(b, keyword_chance=0.5)

    def categories(self, b: DocumentBuilder) -> None:
        with b.element("categories"):
            for index in range(self.n_categories):
                with b.element("category", id=f"category{index}"):
                    b.leaf("name", self.words(1, 2))
                    self.description(b)

    def catgraph(self, b: DocumentBuilder) -> None:
        with b.element("catgraph"):
            for _ in range(self.n_categories):
                b.leaf(
                    "edge",
                    **{
                        "from": f"category{self.rng.randrange(self.n_categories)}",
                        "to": f"category{self.rng.randrange(self.n_categories)}",
                    },
                )

    def people(self, b: DocumentBuilder) -> None:
        with b.element("people"):
            for index in range(self.n_people):
                with b.element("person", id=f"person{index}"):
                    b.leaf("name", self.person_name(index))
                    b.leaf(
                        "emailaddress",
                        f"mailto:{_FIRST[index % len(_FIRST)].lower()}@example.org",
                    )
                    if self.rng.random() < 0.5:
                        b.leaf("phone", f"+30 {self.rng.randint(100, 999)} "
                                        f"{self.rng.randint(1000, 9999)}")
                    if self.rng.random() < 0.6:
                        with b.element("address"):
                            b.leaf("street", f"{self.rng.randint(1, 99)} "
                                             f"{self.rng.choice(_WORDS)} St")
                            b.leaf("city", self.rng.choice(_CITIES))
                            b.leaf("country", self.rng.choice(_COUNTRIES))
                            b.leaf("zipcode", str(self.rng.randint(10000, 99999)))
                    if self.rng.random() < 0.4:
                        b.leaf(
                            "homepage",
                            f"http://example.org/~{_FIRST[index % len(_FIRST)].lower()}",
                        )
                    if self.rng.random() < 0.5:
                        b.leaf("creditcard", " ".join(
                            str(self.rng.randint(1000, 9999)) for _ in range(4)
                        ))
                    if self.rng.random() < 0.5:
                        with b.element("profile",
                                       income=str(self.rng.randint(20000, 90000))):
                            for _ in range(self.rng.randint(0, 2)):
                                b.leaf(
                                    "interest",
                                    category=(
                                        f"category"
                                        f"{self.rng.randrange(self.n_categories)}"
                                    ),
                                )
                            if self.rng.random() < 0.5:
                                b.leaf(
                                    "gender",
                                    self.rng.choice(["male", "female"]),
                                )
                            b.leaf("business", self.rng.choice(["Yes", "No"]))
                            if self.rng.random() < 0.5:
                                b.leaf("age", str(self.rng.randint(18, 80)))

    def open_auctions(self, b: DocumentBuilder) -> None:
        with b.element("open_auctions"):
            for index in range(self.n_open):
                self.open_auction(b, index)

    def open_auction(self, b: DocumentBuilder, index: int) -> None:
        with b.element("open_auction", id=f"open_auction{index}"):
            b.leaf("initial", f"{self.rng.uniform(5, 300):.2f}")
            if self.rng.random() < 0.4:
                b.leaf("reserve", f"{self.rng.uniform(50, 500):.2f}")
            first_bidder_date = self.date()
            bidder_count = self.rng.randint(0, 4) + (3 if index == 0 else 0)
            for bid in range(bidder_count):
                with b.element("bidder"):
                    b.leaf("date", first_bidder_date if bid == 0 else self.date())
                    b.leaf("time", self.time())
                    # Q11 hook: occasionally bid person0 then person1.
                    if bid == 0 and index % 5 == 1:
                        ref = "person0"
                    elif bid == 1 and index % 5 == 1:
                        ref = "person1"
                    else:
                        ref = self.person_ref()
                    b.leaf("personref", person=ref)
                    b.leaf("increase", f"{self.rng.uniform(1, 30):.2f}")
            b.leaf("current", f"{self.rng.uniform(10, 800):.2f}")
            b.leaf("itemref", item=f"item{self.rng.randrange(self.total_items)}")
            b.leaf("seller", person=self.person_ref())
            with b.element("annotation"):
                b.leaf("author", person=self.person_ref())
                self.description(b)
                b.leaf("happiness", str(self.rng.randint(1, 10)))
            b.leaf("quantity", str(self.rng.randint(1, 3)))
            b.leaf("type", self.rng.choice(["Regular", "Featured"]))
            with b.element("interval"):
                # Q-A hook: every eighth auction's start equals the first
                # bidder's date (when it has bidders).
                if index % 8 == 0 and bidder_count:
                    b.leaf("start", first_bidder_date)
                else:
                    b.leaf("start", self.date())
                b.leaf("end", self.date())

    def closed_auctions(self, b: DocumentBuilder) -> None:
        with b.element("closed_auctions"):
            for _ in range(self.n_closed):
                with b.element("closed_auction"):
                    b.leaf("seller", person=self.person_ref())
                    b.leaf("buyer", person=self.person_ref())
                    b.leaf(
                        "itemref",
                        item=f"item{self.rng.randrange(self.total_items)}",
                    )
                    b.leaf("price", f"{self.rng.uniform(10, 900):.2f}")
                    b.leaf("date", self.date())
                    b.leaf("quantity", str(self.rng.randint(1, 3)))
                    b.leaf("type", self.rng.choice(["Regular", "Featured"]))
                    with b.element("annotation"):
                        b.leaf("author", person=self.person_ref())
                        self.description(b)
                        b.leaf("happiness", str(self.rng.randint(1, 10)))
