"""The XPathMark query subset used in the paper's evaluation (Appendix B)
plus the join query Q-A, and the DBLP query set of Table 7.

Each :class:`BenchmarkQuery` records which engines the paper reported it
for — the commercial RDBMS's built-in XPath supported only Q23, Q24 and
Q-A, which the bench harness mirrors.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BenchmarkQuery:
    """One benchmark query."""

    qid: str
    xpath: str
    description: str = ""
    #: Engines the paper's tables report this query for; ``None`` = all.
    engines: tuple[str, ...] | None = None

    def supports(self, engine_name: str) -> bool:
        """Whether the paper reports this query for ``engine_name``."""
        return self.engines is None or engine_name in self.engines


_COMMERCIAL_OK = ("ppf", "edge_ppf", "native", "accel", "naive")

XPATHMARK_QUERIES: list[BenchmarkQuery] = [
    BenchmarkQuery("Q1", "/site/regions/*/item", "items in all regions"),
    BenchmarkQuery(
        "Q2",
        "/site/closed_auctions/closed_auction/annotation/description"
        "/parlist/listitem/text/keyword",
        "long child path",
    ),
    BenchmarkQuery("Q3", "//keyword", "descendant everywhere"),
    BenchmarkQuery(
        "Q4",
        "/descendant-or-self::listitem/descendant-or-self::keyword",
        "descendant-or-self chain",
    ),
    BenchmarkQuery(
        "Q5",
        "/site/regions/*/item[parent::namerica or parent::samerica]",
        "backward-path-only predicate",
    ),
    BenchmarkQuery("Q6", "//keyword/ancestor::listitem", "ancestor axis"),
    BenchmarkQuery(
        "Q7", "//keyword/ancestor-or-self::mail", "ancestor-or-self axis"
    ),
    BenchmarkQuery(
        "Q9",
        "/site/open_auctions/open_auction[@id='open_auction0']"
        "/bidder/preceding-sibling::bidder",
        "preceding-sibling axis",
    ),
    BenchmarkQuery(
        "Q10",
        "/site/regions/*/item[@id='item0']/following::item",
        "following axis",
    ),
    BenchmarkQuery(
        "Q11",
        "/site/open_auctions/open_auction/bidder"
        "[personref/@person='person1']"
        "/preceding::bidder[personref/@person='person0']",
        "preceding axis with predicates",
    ),
    BenchmarkQuery("Q12", "//item[@featured='yes']", "attribute value"),
    BenchmarkQuery("Q13", "//*[@id]", "wildcard with attribute existence"),
    BenchmarkQuery(
        "Q21",
        "/site/regions/*/item[@id='item0']/description//keyword/text()",
        "text projection",
    ),
    BenchmarkQuery(
        "Q22",
        "/site/regions/namerica/item | /site/regions/samerica/item",
        "path union",
    ),
    BenchmarkQuery(
        "Q23",
        "/site/people/person[address and (phone or homepage)]",
        "logical predicate",
        engines=None,
    ),
    BenchmarkQuery(
        "Q24",
        "/site/people/person[not(homepage)]",
        "negated predicate",
        engines=None,
    ),
    BenchmarkQuery(
        "QA",
        "/site/open_auctions/open_auction[bidder/date = interval/start]",
        "join predicate clause",
        engines=None,
    ),
]

#: Queries the paper's commercial RDBMS column reports (all others N/A).
COMMERCIAL_SUPPORTED = frozenset({"Q23", "Q24", "QA"})

#: XPathMark's functional "A" series (Franceschet, XSym 2005) — not part
#: of the paper's timing tables, but squarely inside the supported
#: subset; the test suite runs them across every engine as extra
#: correctness coverage.
XPATHMARK_A_QUERIES: list[BenchmarkQuery] = [
    BenchmarkQuery(
        "A1",
        "/site/closed_auctions/closed_auction/annotation/description"
        "/text/keyword",
        "long plain path",
    ),
    BenchmarkQuery("A2", "//closed_auction//keyword", "double descendant"),
    BenchmarkQuery(
        "A3",
        "/site/closed_auctions/closed_auction//keyword",
        "anchored descendant",
    ),
    BenchmarkQuery(
        "A4",
        "/site/closed_auctions/closed_auction"
        "[annotation/description/text/keyword]/date",
        "deep path predicate",
    ),
    BenchmarkQuery(
        "A5",
        "/site/closed_auctions/closed_auction[descendant::keyword]/date",
        "descendant predicate",
    ),
    BenchmarkQuery(
        "A6",
        "/site/people/person[profile/gender and profile/age]/name",
        "conjunctive predicate",
    ),
    BenchmarkQuery(
        "A7",
        "/site/people/person[phone or homepage]/name",
        "disjunctive predicate",
    ),
    BenchmarkQuery(
        "A8",
        "/site/people/person[address and (phone or homepage) and "
        "(creditcard or profile)]/name",
        "nested logic",
    ),
]


def xpathmark_query(qid: str) -> BenchmarkQuery:
    """Look up a query by id (e.g. ``'Q5'``).

    :raises KeyError: for unknown ids.
    """
    for query in XPATHMARK_QUERIES:
        if query.qid == qid:
            return query
    raise KeyError(f"unknown XPathMark query {qid!r}")
