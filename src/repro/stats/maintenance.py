"""Collecting, persisting and incrementally maintaining path summaries.

All functions work against a store's :class:`~repro.storage.database.
Database` plus its mapping; they are written as free functions (not
methods) so :class:`~repro.storage.schema_aware.ShreddedStore` stays the
only stateful owner.  The per-path counts live in ``repro_path_stats``
(FK into `Paths`); the versioning record — epoch, the store generation
at write time, document and per-relation row counts — is one JSON value
in ``repro_meta``, so a summary is always read back together with the
generation it was true for.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Mapping, Optional

from repro.stats.summary import PathStats, PathSummary, StatsState

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.storage.database import Database
    from repro.storage.schema_aware import SchemaAwareMapping
    from repro.xmltree.nodes import Document

STATS_TABLE_DDL = """
CREATE TABLE IF NOT EXISTS repro_path_stats (
    path_id       INTEGER PRIMARY KEY REFERENCES paths(id),
    element_count INTEGER NOT NULL,
    doc_count     INTEGER NOT NULL,
    value_count   INTEGER NOT NULL
)
"""

_STATE_KEY = "stats_state"


# ---------------------------------------------------------------------------
# persistence
# ---------------------------------------------------------------------------


def load_state(db: "Database") -> Optional[StatsState]:
    """The persisted versioning record, or ``None`` when statistics were
    never collected on this store."""
    if "repro_meta" not in db.table_names():
        return None
    row = db.query_one(
        "SELECT value FROM repro_meta WHERE key = ?", (_STATE_KEY,)
    )
    if row is None:
        return None
    payload = json.loads(row[0])
    return StatsState(
        epoch=int(payload["epoch"]),
        generation=int(payload["generation"]),
        document_count=int(payload["document_count"]),
        relation_counts={
            str(k): int(v)
            for k, v in payload.get("relation_counts", {}).items()
        },
    )


def load_summary(db: "Database") -> Optional[PathSummary]:
    """Read the persisted summary back, or ``None`` when absent."""
    state = load_state(db)
    if state is None or "repro_path_stats" not in db.table_names():
        return None
    stats = {
        str(path): PathStats(
            path=str(path),
            element_count=int(elements),
            doc_count=int(docs),
            value_count=int(values),
        )
        for path, elements, docs, values in db.query(
            "SELECT p.path, s.element_count, s.doc_count, s.value_count "
            "FROM repro_path_stats s JOIN paths p ON s.path_id = p.id"
        )
    }
    return PathSummary(
        version=state.version,
        document_count=state.document_count,
        relation_counts=dict(state.relation_counts),
        stats=stats,
    )


def persist_summary(
    db: "Database",
    summary: PathSummary,
    path_ids: Mapping[str, int],
) -> None:
    """Write ``summary`` (full replace) and its versioning record.

    ``path_ids`` maps path strings to `Paths` ids (the store's
    :class:`~repro.storage.paths.PathIndex` snapshot).  Commits.
    """
    db.execute(STATS_TABLE_DDL)
    db.execute("DELETE FROM repro_path_stats")
    db.executemany(
        "INSERT OR REPLACE INTO repro_path_stats "
        "(path_id, element_count, doc_count, value_count) "
        "VALUES (?, ?, ?, ?)",
        [
            (path_ids[s.path], s.element_count, s.doc_count, s.value_count)
            for s in summary.stats.values()
            if s.path in path_ids
        ],
    )
    payload = json.dumps(
        {
            "epoch": summary.version[0],
            "generation": summary.version[1],
            "document_count": summary.document_count,
            "relation_counts": dict(summary.relation_counts),
        },
        sort_keys=True,
    )
    db.execute(
        "INSERT OR REPLACE INTO repro_meta (key, value) VALUES (?, ?)",
        (_STATE_KEY, payload),
    )
    db.commit()


# ---------------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------------


def collect_summary(
    db: "Database",
    mapping: "SchemaAwareMapping",
    version: tuple[int, int],
) -> PathSummary:
    """Full recompute of the summary from the mapping relations.

    One GROUP BY per relation (value counts only where the relation has
    a text column), joined against `Paths` for the path strings.
    """
    stats: dict[str, PathStats] = {}
    relation_counts: dict[str, int] = {}
    for table, info in mapping.relations.items():
        value_term = (
            "COUNT(t.text)" if info.text_kind is not None else "0"
        )
        rows = db.query(  # static-ok: sql-interp
            f"SELECT p.path, COUNT(*), COUNT(DISTINCT t.doc_id), "
            f"{value_term} FROM {table} t "
            f"JOIN paths p ON t.path_id = p.id GROUP BY t.path_id"
        )
        total = 0
        for path, elements, docs, values in rows:
            total += int(elements)
            previous = stats.get(str(path))
            if previous is None:
                stats[str(path)] = PathStats(
                    path=str(path),
                    element_count=int(elements),
                    doc_count=int(docs),
                    value_count=int(values),
                )
            else:  # pragma: no cover - a path maps to one relation
                stats[str(path)] = PathStats(
                    path=str(path),
                    element_count=previous.element_count + int(elements),
                    doc_count=previous.doc_count + int(docs),
                    value_count=previous.value_count + int(values),
                )
        relation_counts[table] = total
    doc_row = (
        db.query_one("SELECT COUNT(*) FROM docs")
        if "docs" in db.table_names()
        else None
    )
    return PathSummary(
        version=version,
        document_count=int(doc_row[0]) if doc_row else 0,
        relation_counts=relation_counts,
        stats=stats,
    )


# ---------------------------------------------------------------------------
# incremental deltas
# ---------------------------------------------------------------------------


def document_deltas(
    mapping: "SchemaAwareMapping", document: "Document"
) -> tuple[dict[str, tuple[int, int]], dict[str, int]]:
    """Per-path ``(elements, values)`` and per-relation row deltas one
    document contributes, computed from the in-memory tree (the same
    walk the shredder does, so the counts match the stored rows
    exactly)."""
    per_path: dict[str, list[int]] = {}
    per_relation: dict[str, int] = {}
    for element in document.iter_elements():
        info = mapping.relation_for(element.name)
        entry = per_path.setdefault(element.path, [0, 0])
        entry[0] += 1
        if info.text_kind is not None and element.direct_text:
            entry[1] += 1
        per_relation[info.table] = per_relation.get(info.table, 0) + 1
    return (
        {path: (c, v) for path, (c, v) in per_path.items()},
        per_relation,
    )


def removal_deltas(
    db: "Database", mapping: "SchemaAwareMapping", doc_id: int
) -> tuple[dict[str, tuple[int, int]], dict[str, int]]:
    """Per-path and per-relation counts one stored document holds —
    queried *before* its rows are deleted, so ``delete_document`` can
    subtract them from the summary."""
    per_path: dict[str, tuple[int, int]] = {}
    per_relation: dict[str, int] = {}
    for table, info in mapping.relations.items():
        value_term = (
            "COUNT(t.text)" if info.text_kind is not None else "0"
        )
        rows = db.query(  # static-ok: sql-interp
            f"SELECT p.path, COUNT(*), {value_term} FROM {table} t "
            f"JOIN paths p ON t.path_id = p.id "
            f"WHERE t.doc_id = ? GROUP BY t.path_id",
            (doc_id,),
        )
        total = 0
        for path, elements, values in rows:
            total += int(elements)
            per_path[str(path)] = (int(elements), int(values))
        if total:
            per_relation[table] = total
    return per_path, per_relation
