"""Path-summary statistics for the cost-based optimizer.

The paper motivates its Section 4.5 rewrites and the Table 3
regex-vs-equality choice with cardinality arguments; this package gives
the optimizer those cardinalities.  A :class:`PathSummary` — per-path
element counts, distinct-document counts, child fan-out and
value-presence ratios, in the spirit of Arion et al.'s path summaries —
is collected at shred/bulk-load time from the `Paths` relation and the
mapping relations, persisted in the store (``repro_path_stats`` +
``repro_meta``), versioned against ``store.generation`` and maintained
incrementally by ``bulk_load`` / ``delete_document``.

The summary never changes *what* a query returns — stale statistics can
only mis-steer performance decisions (join order, access strategy,
union-branch order, fan-out gating), never correctness.
"""

from repro.stats.summary import PathStats, PathSummary, StatsState
from repro.stats.maintenance import (
    STATS_TABLE_DDL,
    collect_summary,
    document_deltas,
    load_state,
    load_summary,
    persist_summary,
    removal_deltas,
)

__all__ = [
    "PathStats",
    "PathSummary",
    "StatsState",
    "STATS_TABLE_DDL",
    "collect_summary",
    "document_deltas",
    "load_state",
    "load_summary",
    "persist_summary",
    "removal_deltas",
]
