"""The :class:`PathSummary` value object and its per-path records.

Everything here is immutable, pure-Python math over counts; collection
and persistence against a store live in
:mod:`repro.stats.maintenance`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping, Optional


@dataclass(frozen=True)
class PathStats:
    """Statistics for one root-to-node path of the `Paths` relation."""

    path: str
    #: Number of element rows carrying this ``path_id``.
    element_count: int
    #: Number of distinct documents containing the path.
    doc_count: int
    #: Number of those rows with a non-NULL stored text value.
    value_count: int

    @property
    def value_ratio(self) -> float:
        """Fraction of elements on this path carrying a text value."""
        if self.element_count <= 0:
            return 0.0
        return self.value_count / self.element_count


@dataclass(frozen=True)
class StatsState:
    """The versioning record persisted next to the per-path counts.

    ``epoch`` increments on every statistics write; ``generation`` is
    the store's mutation counter at the time of that write.  Statistics
    are *stale* exactly when the recorded generation no longer matches
    the store's — the cost model then keeps using them (safely: they
    only steer performance), but ``repro shard info`` / ``repro stats``
    surface the staleness and ``ShardedStore.analyze`` refreshes them.
    """

    epoch: int
    generation: int
    document_count: int
    relation_counts: Mapping[str, int]

    @property
    def version(self) -> tuple[int, int]:
        """The ``(epoch, generation)`` pair used in cache fingerprints."""
        return (self.epoch, self.generation)


@dataclass(frozen=True)
class PathSummary:
    """Per-path cardinalities of one store, plus relation row counts."""

    #: ``(epoch, generation)`` at collection/refresh time.
    version: tuple[int, int]
    #: Number of loaded documents.
    document_count: int
    #: Row count per mapping relation (table name -> rows).
    relation_counts: Mapping[str, int]
    #: Per-path statistics, keyed by the path string.
    stats: Mapping[str, PathStats] = field(default_factory=dict)

    # -- totals -------------------------------------------------------------

    @property
    def total_elements(self) -> int:
        """Total element rows across all paths."""
        return sum(s.element_count for s in self.stats.values())

    @property
    def path_count(self) -> int:
        """Number of distinct paths with at least one element."""
        return len(self.stats)

    def relation_count_for(self, table: str) -> Optional[int]:
        """Row count of one mapping relation, if known."""
        return self.relation_counts.get(table)

    # -- per-path lookups ---------------------------------------------------

    def count_for(self, path: str) -> int:
        """Element count of one literal path (0 when absent)."""
        stats = self.stats.get(path)
        return stats.element_count if stats is not None else 0

    def value_ratio(self, path: str) -> float:
        """Value-presence ratio of one path (0.0 when absent)."""
        stats = self.stats.get(path)
        return stats.value_ratio if stats is not None else 0.0

    # -- pattern matching ---------------------------------------------------

    def matching_paths(self, pattern: "str | re.Pattern[str]") -> list[str]:
        """Stored paths satisfying a Table 1 regex (``re.search``, the
        exact semantics of the SQL ``regexp_like`` filter)."""
        regex = re.compile(pattern) if isinstance(pattern, str) else pattern
        return [p for p in self.stats if regex.search(p)]

    def count_matching(self, pattern: "str | re.Pattern[str]") -> int:
        """Total element count over the paths a regex matches."""
        return sum(
            self.count_for(p) for p in self.matching_paths(pattern)
        )

    # -- structure ----------------------------------------------------------

    def child_fanout(self, path: str) -> float:
        """Mean number of children per element of ``path``, derived
        from the path strings themselves (the parent of ``/a/b/c`` is
        ``/a/b``, so no extra bookkeeping is stored)."""
        parent_count = self.count_for(path)
        if parent_count <= 0:
            return 0.0
        prefix = path + "/"
        children = sum(
            s.element_count
            for p, s in self.stats.items()
            if p.startswith(prefix) and "/" not in p[len(prefix):]
        )
        return children / parent_count

    def top_paths(self, k: int = 10) -> list[PathStats]:
        """The ``k`` fattest paths by element count (ties by path)."""
        ranked = sorted(
            self.stats.values(),
            key=lambda s: (-s.element_count, s.path),
        )
        return ranked[:k]
